/**
 * @file
 * Re-implementation of the ACT architectural carbon model (Gupta et
 * al., ISCA 2022) as the comparison baseline of Fig. 7(c).
 *
 * ACT's embodied model, per the paper's critique (Sec. VIII):
 *  - per-die carbon = (CI_fab * EPA + GPA + MPA) / Y * area,
 *  - a *fixed* packaging carbon (150 g CO2) regardless of package
 *    area, architecture, or assembly yield,
 *  - no design CFP,
 *  - no wafer-periphery silicon wastage,
 *  - no equipment-efficiency derate.
 */

#ifndef ECOCHIP_ACT_ACT_MODEL_H
#define ECOCHIP_ACT_ACT_MODEL_H

#include "chiplet/chiplet.h"
#include "tech/tech_db.h"
#include "yield/yield_model.h"

namespace ecochip {

/** ACT baseline estimator. */
class ActModel
{
  public:
    /** ACT's fixed package-assembly carbon (kg CO2). */
    static constexpr double kPackageCo2Kg = 0.150;

    /**
     * @param tech Technology database shared with ECO-CHIP so the
     *        comparison isolates *model* differences, not
     *        calibration differences.
     * @param fab_intensity_g_per_kwh Fab energy carbon intensity.
     */
    explicit ActModel(const TechDb &tech,
                      double fab_intensity_g_per_kwh = 700.0);

    /** ACT per-die manufacturing carbon (kg CO2). */
    double dieCo2Kg(const Chiplet &chiplet) const;

    /**
     * ACT embodied carbon of a system: sum of per-die carbon plus
     * the fixed packaging constant (kg CO2).
     */
    double embodiedCo2Kg(const SystemSpec &system) const;

  private:
    const TechDb *tech_;
    YieldModel yieldModel_;
    double fabIntensityGPerKwh_;
};

} // namespace ecochip

#endif // ECOCHIP_ACT_ACT_MODEL_H
