/**
 * @file
 * Unit and property tests for the technology database, including
 * the Table I range checks and the scaling-trend invariants the
 * paper's arguments depend on.
 */

#include <gtest/gtest.h>

#include "support/error.h"
#include "tech/carbon_intensity.h"
#include "tech/tech_db.h"

namespace ecochip {
namespace {

/** Adjacent standard-node pairs (advanced, legacy). */
class NodePairTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
  protected:
    TechDb tech_;
};

TEST_P(NodePairTest, DefectDensityFallsTowardLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    EXPECT_GT(tech_.defectDensityPerCm2(advanced),
              tech_.defectDensityPerCm2(legacy));
}

TEST_P(NodePairTest, TransistorDensityFallsTowardLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    for (DesignType type : {DesignType::Logic, DesignType::Memory,
                            DesignType::Analog}) {
        EXPECT_GT(
            tech_.transistorDensityMtrPerMm2(type, advanced),
            tech_.transistorDensityMtrPerMm2(type, legacy))
            << toString(type);
    }
}

TEST_P(NodePairTest, EpaFallsTowardLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    EXPECT_GT(tech_.epaKwhPerCm2(advanced),
              tech_.epaKwhPerCm2(legacy));
}

TEST_P(NodePairTest, GasEmissionsFallTowardLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    EXPECT_GT(tech_.cgasKgPerCm2(advanced),
              tech_.cgasKgPerCm2(legacy));
}

TEST_P(NodePairTest, EquipmentDerateFavorsLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    EXPECT_GE(tech_.equipmentDerate(advanced),
              tech_.equipmentDerate(legacy));
}

TEST_P(NodePairTest, EdaProductivityFavorsLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    EXPECT_LT(tech_.edaProductivity(advanced),
              tech_.edaProductivity(legacy));
}

TEST_P(NodePairTest, SupplyVoltageRisesTowardLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    EXPECT_LT(tech_.supplyVoltageV(advanced),
              tech_.supplyVoltageV(legacy));
}

TEST_P(NodePairTest, WaferCostFallsTowardLegacyNodes)
{
    const auto [advanced, legacy] = GetParam();
    EXPECT_GT(tech_.waferCostUsd(advanced),
              tech_.waferCostUsd(legacy));
}

INSTANTIATE_TEST_SUITE_P(
    AdjacentNodes, NodePairTest,
    ::testing::Values(std::pair{3.0, 5.0}, std::pair{5.0, 7.0},
                      std::pair{7.0, 10.0}, std::pair{10.0, 14.0},
                      std::pair{14.0, 22.0}, std::pair{22.0, 28.0},
                      std::pair{28.0, 40.0},
                      std::pair{40.0, 65.0}));

/** Every standard node obeys the Table I published ranges. */
class TableRangeTest : public ::testing::TestWithParam<double>
{
  protected:
    TechDb tech_;
};

TEST_P(TableRangeTest, DefectDensityInTableRange)
{
    const double d0 = tech_.defectDensityPerCm2(GetParam());
    EXPECT_GE(d0, 0.07);
    EXPECT_LE(d0, 0.30);
}

TEST_P(TableRangeTest, LogicDensityInTableRange)
{
    const double dt = tech_.transistorDensityMtrPerMm2(
        DesignType::Logic, GetParam());
    EXPECT_GE(dt, 5.0);
    EXPECT_LE(dt, 150.0);
}

TEST_P(TableRangeTest, EpaInTableRange)
{
    const double epa = tech_.epaKwhPerCm2(GetParam());
    EXPECT_GE(epa, 0.8);
    EXPECT_LE(epa, 3.5);
}

TEST_P(TableRangeTest, CgasInTableRange)
{
    const double cgas = tech_.cgasKgPerCm2(GetParam());
    EXPECT_GE(cgas, 0.1);
    EXPECT_LE(cgas, 0.5);
}

TEST_P(TableRangeTest, DeratesInUnitInterval)
{
    EXPECT_GT(tech_.equipmentDerate(GetParam()), 0.0);
    EXPECT_LE(tech_.equipmentDerate(GetParam()), 1.0);
    EXPECT_GT(tech_.edaProductivity(GetParam()), 0.0);
    EXPECT_LE(tech_.edaProductivity(GetParam()), 1.0);
}

TEST_P(TableRangeTest, MaterialFootprintMatchesTableI)
{
    EXPECT_DOUBLE_EQ(tech_.cmaterialKgPerCm2(GetParam()), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    StandardNodes, TableRangeTest,
    ::testing::ValuesIn(TechDb::standardNodesNm()));

TEST(TechDb, PackagingEplaTablesInTableRange)
{
    TechDb tech;
    for (double node : {22.0, 28.0, 40.0, 65.0}) {
        EXPECT_GE(tech.eplaRdlKwhPerCm2(node), 0.05);
        EXPECT_LE(tech.eplaRdlKwhPerCm2(node), 0.20);
        EXPECT_GE(tech.eplaBridgeKwhPerCm2(node), 0.10);
        EXPECT_LE(tech.eplaBridgeKwhPerCm2(node), 0.35);
        // Bridge patterning (ultra-fine L/S) costs more per layer
        // than coarse RDL at every node.
        EXPECT_GT(tech.eplaBridgeKwhPerCm2(node),
                  tech.eplaRdlKwhPerCm2(node));
    }
}

TEST(TechDb, EffectiveDefectDensityOrdering)
{
    // RDL (coarse) < interposer BEOL < bridge (fine) == silicon.
    TechDb tech;
    for (double node : {22.0, 40.0, 65.0}) {
        EXPECT_LT(tech.rdlDefectDensityPerCm2(node),
                  tech.interposerDefectDensityPerCm2(node));
        EXPECT_LT(tech.interposerDefectDensityPerCm2(node),
                  tech.bridgeDefectDensityPerCm2(node));
        EXPECT_DOUBLE_EQ(tech.bridgeDefectDensityPerCm2(node),
                         tech.defectDensityPerCm2(node));
    }
}

TEST(TechDb, AreaModelIsInverseOfTransistorModel)
{
    TechDb tech;
    for (DesignType type : {DesignType::Logic, DesignType::Memory,
                            DesignType::Analog}) {
        for (double node : TechDb::standardNodesNm()) {
            const double area = 123.0;
            const double mtr =
                tech.transistorsMtr(type, node, area);
            EXPECT_NEAR(tech.dieAreaMm2(type, node, mtr), area,
                        1e-9);
        }
    }
}

TEST(TechDb, LogicScalesFasterThanMemoryFasterThanAnalog)
{
    // Area growth when retargeting 7 nm content to 14 nm must be
    // largest for logic -- the premise of the mix-and-match
    // argument (Sec. II-A(2)).
    TechDb tech;
    auto growth = [&](DesignType type) {
        const double mtr = tech.transistorsMtr(type, 7.0, 100.0);
        return tech.dieAreaMm2(type, 14.0, mtr) / 100.0;
    };
    EXPECT_GT(growth(DesignType::Logic),
              growth(DesignType::Memory));
    EXPECT_GT(growth(DesignType::Memory),
              growth(DesignType::Analog));
    EXPECT_GT(growth(DesignType::Analog), 1.0);
}

TEST(TechDb, InterpolatesBetweenAnchors)
{
    TechDb tech;
    const double d0_mid = tech.defectDensityPerCm2(8.5);
    EXPECT_GT(d0_mid, tech.defectDensityPerCm2(10.0));
    EXPECT_LT(d0_mid, tech.defectDensityPerCm2(7.0));
}

TEST(TechDb, OverridesReplaceTables)
{
    TechDb tech;
    tech.setDefectDensityTable(
        PiecewiseLinear({{3.0, 0.1}, {65.0, 0.1}}));
    EXPECT_DOUBLE_EQ(tech.defectDensityPerCm2(7.0), 0.1);
    tech.setClusteringAlpha(2.0);
    EXPECT_DOUBLE_EQ(tech.clusteringAlpha(), 2.0);
    tech.setTransistorDensityTable(
        DesignType::Logic,
        PiecewiseLinear({{3.0, 50.0}, {65.0, 50.0}}));
    EXPECT_DOUBLE_EQ(
        tech.transistorDensityMtrPerMm2(DesignType::Logic, 10.0),
        50.0);
    tech.setEpaTable(PiecewiseLinear({{3.0, 1.0}, {65.0, 1.0}}));
    EXPECT_DOUBLE_EQ(tech.epaKwhPerCm2(28.0), 1.0);
}

TEST(TechDb, OverrideValidation)
{
    TechDb tech;
    EXPECT_THROW(tech.setDefectDensityTable(PiecewiseLinear()),
                 ConfigError);
    EXPECT_THROW(tech.setClusteringAlpha(0.0), ConfigError);
    EXPECT_THROW(tech.setEpaTable(PiecewiseLinear()), ConfigError);
}

TEST(TechDb, RejectsNonPositiveNodes)
{
    TechDb tech;
    EXPECT_THROW(tech.defectDensityPerCm2(0.0), ConfigError);
    EXPECT_THROW(tech.defectDensityPerCm2(-7.0), ConfigError);
    EXPECT_THROW(
        tech.transistorDensityMtrPerMm2(DesignType::Logic, -1.0),
        ConfigError);
}

TEST(TechDb, EdaProductivitySamplesCoverStandardNodes)
{
    TechDb tech;
    const auto samples = tech.edaProductivitySamples();
    EXPECT_EQ(samples.size(), TechDb::standardNodesNm().size());
    EXPECT_DOUBLE_EQ(samples.back().second, 1.0); // 65 nm anchor
}

TEST(CarbonIntensity, TableIRangeAndOrdering)
{
    // Table I: 30 - 700 g CO2/kWh between renewables and coal.
    EXPECT_DOUBLE_EQ(
        carbonIntensityGPerKwh(EnergySource::Coal), 700.0);
    EXPECT_GT(carbonIntensityGPerKwh(EnergySource::Coal),
              carbonIntensityGPerKwh(EnergySource::Gas));
    EXPECT_GT(carbonIntensityGPerKwh(EnergySource::Gas),
              carbonIntensityGPerKwh(EnergySource::Solar));
    EXPECT_GT(carbonIntensityGPerKwh(EnergySource::Solar),
              carbonIntensityGPerKwh(EnergySource::Wind));
}

TEST(CarbonIntensity, StringRoundTrip)
{
    for (EnergySource source :
         {EnergySource::Coal, EnergySource::Gas,
          EnergySource::Biomass, EnergySource::Solar,
          EnergySource::Geothermal, EnergySource::Hydro,
          EnergySource::Nuclear, EnergySource::Wind}) {
        EXPECT_EQ(energySourceFromString(toString(source)),
                  source);
    }
    EXPECT_THROW(energySourceFromString("fusion"), ConfigError);
}

TEST(DesignTypeNames, StringRoundTripAndAliases)
{
    for (DesignType type : {DesignType::Logic, DesignType::Memory,
                            DesignType::Analog}) {
        EXPECT_EQ(designTypeFromString(toString(type)), type);
    }
    EXPECT_EQ(designTypeFromString("digital"), DesignType::Logic);
    EXPECT_EQ(designTypeFromString("sram"), DesignType::Memory);
    EXPECT_EQ(designTypeFromString("io"), DesignType::Analog);
    EXPECT_THROW(designTypeFromString("quantum"), ConfigError);
}

} // namespace
} // namespace ecochip
