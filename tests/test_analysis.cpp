/**
 * @file
 * Tests for the analysis module: RNG, statistics, sensitivity,
 * and Monte-Carlo uncertainty.
 */

#include <gtest/gtest.h>

#include "analysis/montecarlo.h"
#include "analysis/sensitivity.h"
#include "core/testcases.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/stats.h"

namespace ecochip {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(7);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, Uniform01InRangeAndWellSpread)
{
    Rng rng(123);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(0.7, 1.3);
        ASSERT_GE(v, 0.7);
        ASSERT_LT(v, 1.3);
    }
}

TEST(SampleStats, HandComputedMoments)
{
    SampleStats stats({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_NEAR(stats.stddev(), 1.2909944, 1e-6);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_EQ(stats.count(), 4u);
}

TEST(SampleStats, Percentiles)
{
    SampleStats stats({10.0, 20.0, 30.0, 40.0, 50.0});
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(stats.percentile(50.0), 30.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100.0), 50.0);
    EXPECT_DOUBLE_EQ(stats.percentile(25.0), 20.0);
    EXPECT_DOUBLE_EQ(stats.percentile(87.5), 45.0);
    EXPECT_THROW(stats.percentile(-1.0), ConfigError);
    EXPECT_THROW(stats.percentile(101.0), ConfigError);
}

TEST(SampleStats, SingleSampleDegenerates)
{
    SampleStats stats({7.0});
    EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(stats.percentile(50.0), 7.0);
    EXPECT_THROW(SampleStats({}), ConfigError);
}

class SensitivityTest : public ::testing::Test
{
  protected:
    EcoChipConfig
    config() const
    {
        EcoChipConfig c;
        c.operating = testcases::ga102Operating();
        return c;
    }

    SystemSpec
    system(const TechDb &tech) const
    {
        return testcases::ga102ThreeChiplet(tech, 7.0, 14.0,
                                            10.0);
    }
};

TEST_F(SensitivityTest, FabIntensityNearUnitElasticityOfMfg)
{
    // Embodied carbon is dominated by fab energy whose carbon
    // scales linearly with intensity -> elasticity close to but
    // below 1 (gas/material terms don't scale).
    SensitivityAnalyzer analyzer(config());
    TechDb tech;
    std::vector<SensitivityParameter> params;
    for (auto &p : SensitivityAnalyzer::standardParameters())
        if (p.name == "fab carbon intensity")
            params.push_back(p);
    ASSERT_EQ(params.size(), 1u);

    const auto results = analyzer.analyze(
        system(tech), params, CarbonMetric::Embodied);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].elasticity, 0.3);
    EXPECT_LT(results[0].elasticity, 1.0);
    EXPECT_LT(results[0].lowValue, results[0].baseValue);
    EXPECT_GT(results[0].highValue, results[0].baseValue);
}

TEST_F(SensitivityTest, LifetimeOnlyMovesOperationalCarbon)
{
    SensitivityAnalyzer analyzer(config());
    TechDb tech;
    std::vector<SensitivityParameter> params;
    for (auto &p : SensitivityAnalyzer::standardParameters())
        if (p.name == "lifetime")
            params.push_back(p);

    const auto emb = analyzer.analyze(
        system(tech), params, CarbonMetric::Embodied);
    EXPECT_NEAR(emb[0].elasticity, 0.0, 1e-9);

    const auto op = analyzer.analyze(
        system(tech), params, CarbonMetric::Operational);
    EXPECT_NEAR(op[0].elasticity, 1.0, 1e-6);
}

TEST_F(SensitivityTest, ChipletVolumeHasNegativeElasticity)
{
    // More parts -> better design amortization -> lower Cemb.
    SensitivityAnalyzer analyzer(config());
    TechDb tech;
    std::vector<SensitivityParameter> params;
    for (auto &p : SensitivityAnalyzer::standardParameters())
        if (p.name == "chiplet volume NMi")
            params.push_back(p);
    const auto results = analyzer.analyze(
        system(tech), params, CarbonMetric::Embodied);
    EXPECT_LT(results[0].elasticity, 0.0);
}

TEST_F(SensitivityTest, StandardParametersAllEvaluate)
{
    SensitivityAnalyzer analyzer(config());
    TechDb tech;
    const auto results = analyzer.analyze(
        system(tech), SensitivityAnalyzer::standardParameters(),
        CarbonMetric::Total);
    EXPECT_EQ(results.size(),
              SensitivityAnalyzer::standardParameters().size());
    for (const auto &row : results) {
        EXPECT_GT(row.lowValue, 0.0) << row.name;
        EXPECT_GT(row.highValue, 0.0) << row.name;
    }
}

TEST_F(SensitivityTest, DeltaValidation)
{
    SensitivityAnalyzer analyzer(config());
    TechDb tech;
    EXPECT_THROW(
        analyzer.analyze(system(tech),
                         SensitivityAnalyzer::standardParameters(),
                         CarbonMetric::Total, 0.0),
        ConfigError);
    EXPECT_THROW(
        analyzer.analyze(system(tech),
                         SensitivityAnalyzer::standardParameters(),
                         CarbonMetric::Total, 1.0),
        ConfigError);
}

class MonteCarloTest : public ::testing::Test
{
  protected:
    EcoChipConfig
    config() const
    {
        EcoChipConfig c;
        c.operating = testcases::ga102Operating();
        return c;
    }
};

TEST_F(MonteCarloTest, DeterministicForEqualSeeds)
{
    MonteCarloAnalyzer analyzer(config());
    TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 14.0, 10.0);
    const UncertaintyReport a = analyzer.run(system, 50, 99);
    const UncertaintyReport b = analyzer.run(system, 50, 99);
    EXPECT_DOUBLE_EQ(a.embodied.mean(), b.embodied.mean());
    EXPECT_DOUBLE_EQ(a.total.percentile(90.0),
                     b.total.percentile(90.0));
}

TEST_F(MonteCarloTest, IndependentAnalyzersIdenticalForEqualSeeds)
{
    // Two analyzers constructed from scratch must reproduce the
    // exact same distribution for the same seed: CTest runs suites
    // in parallel (`ctest -j`), so any hidden global RNG state
    // would surface as flaky cross-run differences here.
    TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 14.0, 10.0);

    const MonteCarloAnalyzer first(config());
    const MonteCarloAnalyzer second(config());
    const UncertaintyReport a = first.run(system, 64, 2024);
    const UncertaintyReport b = second.run(system, 64, 2024);

    const auto expect_identical = [](const SampleStats &x,
                                     const SampleStats &y) {
        EXPECT_EQ(x.count(), y.count());
        EXPECT_DOUBLE_EQ(x.mean(), y.mean());
        EXPECT_DOUBLE_EQ(x.stddev(), y.stddev());
        EXPECT_DOUBLE_EQ(x.min(), y.min());
        EXPECT_DOUBLE_EQ(x.max(), y.max());
        for (double p : {5.0, 50.0, 95.0})
            EXPECT_DOUBLE_EQ(x.percentile(p), y.percentile(p));
    };
    expect_identical(a.embodied, b.embodied);
    expect_identical(a.operational, b.operational);
    expect_identical(a.total, b.total);

    // A different seed must actually move the distribution.
    const UncertaintyReport c = first.run(system, 64, 2025);
    EXPECT_NE(a.total.mean(), c.total.mean());
}

TEST_F(MonteCarloTest, DistributionBracketsDeterministicValue)
{
    MonteCarloAnalyzer analyzer(config());
    TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 14.0, 10.0);

    EcoChip point_estimator(config());
    const double point =
        point_estimator.estimate(system).embodiedCo2Kg();

    const UncertaintyReport report =
        analyzer.run(system, 200, 7);
    EXPECT_LT(report.embodied.min(), point);
    EXPECT_GT(report.embodied.max(), point);
    EXPECT_NEAR(report.embodied.mean(), point,
                0.15 * point);
    // Spread is real but bounded.
    EXPECT_GT(report.embodied.stddev(), 0.0);
    EXPECT_LT(report.embodied.stddev(), 0.5 * point);
}

TEST_F(MonteCarloTest, ZeroBandsCollapseToPointEstimate)
{
    UncertaintyBands none;
    none.defectDensity = 0.0;
    none.epa = 0.0;
    none.intensity = 0.0;
    none.designTime = 0.0;
    none.dutyCycle = 0.0;
    MonteCarloAnalyzer analyzer(config(), TechDb(), none);
    TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 14.0, 10.0);

    const UncertaintyReport report =
        analyzer.run(system, 10, 1);
    EXPECT_NEAR(report.total.stddev(), 0.0, 1e-9);

    EcoChip point_estimator(config());
    EXPECT_NEAR(report.total.mean(),
                point_estimator.estimate(system).totalCo2Kg(),
                1e-9);
}

TEST_F(MonteCarloTest, Validation)
{
    UncertaintyBands bad;
    bad.defectDensity = 1.5;
    EXPECT_THROW(MonteCarloAnalyzer(config(), TechDb(), bad),
                 ConfigError);
    MonteCarloAnalyzer analyzer(config());
    TechDb tech;
    EXPECT_THROW(
        analyzer.run(
            testcases::ga102ThreeChiplet(tech, 7.0, 14.0, 10.0),
            1),
        ConfigError);
}

} // namespace
} // namespace ecochip
