/**
 * @file
 * Unit tests for PiecewiseLinear and LinearRegression.
 */

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/interp.h"

namespace ecochip {
namespace {

TEST(PiecewiseLinear, ExactAtAnchors)
{
    PiecewiseLinear f({{1.0, 10.0}, {2.0, 20.0}, {4.0, 80.0}});
    EXPECT_DOUBLE_EQ(f.eval(1.0), 10.0);
    EXPECT_DOUBLE_EQ(f.eval(2.0), 20.0);
    EXPECT_DOUBLE_EQ(f.eval(4.0), 80.0);
}

TEST(PiecewiseLinear, InterpolatesLinearlyBetweenAnchors)
{
    PiecewiseLinear f({{0.0, 0.0}, {10.0, 100.0}});
    EXPECT_DOUBLE_EQ(f.eval(2.5), 25.0);
    EXPECT_DOUBLE_EQ(f.eval(5.0), 50.0);
    EXPECT_DOUBLE_EQ(f.eval(7.5), 75.0);
}

TEST(PiecewiseLinear, InterpolatesInCorrectSegment)
{
    PiecewiseLinear f({{0.0, 0.0}, {1.0, 10.0}, {2.0, 0.0}});
    EXPECT_DOUBLE_EQ(f.eval(0.5), 5.0);
    EXPECT_DOUBLE_EQ(f.eval(1.5), 5.0);
}

TEST(PiecewiseLinear, ClampsOutsideRange)
{
    PiecewiseLinear f({{1.0, 10.0}, {2.0, 20.0}});
    EXPECT_DOUBLE_EQ(f.eval(0.0), 10.0);
    EXPECT_DOUBLE_EQ(f.eval(100.0), 20.0);
}

TEST(PiecewiseLinear, SortsUnorderedInput)
{
    PiecewiseLinear f({{4.0, 40.0}, {1.0, 10.0}, {2.0, 20.0}});
    EXPECT_DOUBLE_EQ(f.minX(), 1.0);
    EXPECT_DOUBLE_EQ(f.maxX(), 4.0);
    EXPECT_DOUBLE_EQ(f.eval(1.5), 15.0);
}

TEST(PiecewiseLinear, RejectsDuplicateAbscissa)
{
    EXPECT_THROW(PiecewiseLinear({{1.0, 1.0}, {1.0, 2.0}}),
                 ConfigError);
}

TEST(PiecewiseLinear, EmptyTableThrowsOnEval)
{
    PiecewiseLinear f;
    EXPECT_TRUE(f.empty());
    EXPECT_THROW(f.eval(1.0), ConfigError);
}

TEST(PiecewiseLinear, AddPointKeepsOrder)
{
    PiecewiseLinear f;
    f.addPoint(5.0, 50.0);
    f.addPoint(1.0, 10.0);
    f.addPoint(3.0, 30.0);
    EXPECT_EQ(f.size(), 3u);
    EXPECT_DOUBLE_EQ(f.eval(2.0), 20.0);
    EXPECT_THROW(f.addPoint(3.0, 99.0), ConfigError);
}

TEST(PiecewiseLinear, MinMaxY)
{
    PiecewiseLinear f({{0.0, 5.0}, {1.0, -2.0}, {2.0, 8.0}});
    EXPECT_DOUBLE_EQ(f.minY(), -2.0);
    EXPECT_DOUBLE_EQ(f.maxY(), 8.0);
}

TEST(PiecewiseLinear, SinglePointIsConstant)
{
    PiecewiseLinear f({{3.0, 42.0}});
    EXPECT_DOUBLE_EQ(f.eval(-10.0), 42.0);
    EXPECT_DOUBLE_EQ(f.eval(3.0), 42.0);
    EXPECT_DOUBLE_EQ(f.eval(10.0), 42.0);
}

TEST(LinearRegression, RecoversExactLine)
{
    LinearRegression fit(
        {{0.0, 1.0}, {1.0, 3.0}, {2.0, 5.0}, {3.0, 7.0}});
    EXPECT_NEAR(fit.slope(), 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept(), 1.0, 1e-12);
    EXPECT_NEAR(fit.rSquared(), 1.0, 1e-12);
    EXPECT_NEAR(fit.eval(10.0), 21.0, 1e-10);
}

TEST(LinearRegression, NoisyFitHasImperfectR2)
{
    LinearRegression fit(
        {{0.0, 0.0}, {1.0, 1.2}, {2.0, 1.8}, {3.0, 3.1}});
    EXPECT_GT(fit.rSquared(), 0.9);
    EXPECT_LT(fit.rSquared(), 1.0);
    EXPECT_NEAR(fit.slope(), 1.0, 0.15);
}

TEST(LinearRegression, RejectsDegenerateInput)
{
    EXPECT_THROW(LinearRegression({{1.0, 1.0}}), ConfigError);
    EXPECT_THROW(LinearRegression({{1.0, 1.0}, {1.0, 2.0}}),
                 ConfigError);
}

/** Interpolation never overshoots the sampled ordinate range. */
class PiecewiseLinearBoundsTest
    : public ::testing::TestWithParam<double>
{};

TEST_P(PiecewiseLinearBoundsTest, EvalWithinSampledRange)
{
    PiecewiseLinear f({{3.0, 0.30}, {7.0, 0.20}, {14.0, 0.12},
                       {28.0, 0.09}, {65.0, 0.07}});
    const double y = f.eval(GetParam());
    EXPECT_GE(y, f.minY());
    EXPECT_LE(y, f.maxY());
}

INSTANTIATE_TEST_SUITE_P(SweepX, PiecewiseLinearBoundsTest,
                         ::testing::Values(1.0, 3.0, 5.0, 6.5, 9.0,
                                           12.0, 20.0, 40.0, 64.9,
                                           65.0, 100.0));

} // namespace
} // namespace ecochip
