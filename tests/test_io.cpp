/**
 * @file
 * Unit tests for JSON configuration loading and report emission.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "engine/analysis_engine.h"
#include "io/batch_report_io.h"
#include "io/config_loader.h"
#include "io/event_journal_io.h"
#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "support/error.h"

namespace ecochip {
namespace {

TEST(ConfigLoader, SystemFromJsonWithAreas)
{
    TechDb tech;
    const json::Value doc = json::parse(R"({
        "name": "soc",
        "monolithic": false,
        "chiplets": [
            {"name": "digital", "type": "logic", "node_nm": 7,
             "area_mm2": 500.0},
            {"name": "memory", "type": "memory", "node_nm": 10,
             "area_mm2": 68.0, "reused": true}
        ]
    })");
    const SystemSpec system = systemFromJson(doc, tech);
    EXPECT_EQ(system.name, "soc");
    EXPECT_FALSE(system.singleDie);
    ASSERT_EQ(system.chiplets.size(), 2u);
    EXPECT_NEAR(system.chiplets[0].areaMm2(tech), 500.0, 1e-9);
    EXPECT_EQ(system.chiplets[1].type, DesignType::Memory);
    EXPECT_TRUE(system.chiplets[1].reused);
}

TEST(ConfigLoader, SystemFromJsonWithTransistors)
{
    TechDb tech;
    const json::Value doc = json::parse(R"({
        "name": "soc",
        "chiplets": [
            {"name": "c", "type": "logic", "node_nm": 7,
             "transistors_mtr": 9100.0}
        ]
    })");
    const SystemSpec system = systemFromJson(doc, tech);
    EXPECT_NEAR(system.chiplets[0].areaMm2(tech), 100.0, 1e-9);
}

TEST(ConfigLoader, SystemJsonValidation)
{
    TechDb tech;
    // Both area and transistors given.
    EXPECT_THROW(
        systemFromJson(json::parse(R"({"chiplets": [
            {"name": "c", "node_nm": 7, "area_mm2": 10,
             "transistors_mtr": 100}]})"),
                       tech),
        ConfigError);
    // Neither given.
    EXPECT_THROW(
        systemFromJson(json::parse(R"({"chiplets": [
            {"name": "c", "node_nm": 7}]})"),
                       tech),
        ConfigError);
    // Empty chiplet list.
    EXPECT_THROW(
        systemFromJson(json::parse(R"({"chiplets": []})"), tech),
        ConfigError);
    // Bad node.
    EXPECT_THROW(
        systemFromJson(json::parse(R"({"chiplets": [
            {"name": "c", "node_nm": -7, "area_mm2": 10}]})"),
                       tech),
        ConfigError);
}

TEST(ConfigLoader, SystemRoundTrip)
{
    TechDb tech;
    SystemSpec system;
    system.name = "rt";
    system.singleDie = true;
    system.chiplets.push_back(Chiplet::fromArea(
        "logic", DesignType::Logic, 7.0, 120.0, tech));
    system.chiplets.push_back(Chiplet::fromArea(
        "mem", DesignType::Memory, 7.0, 60.0, tech));
    system.chiplets[1].reused = true;

    const SystemSpec loaded =
        systemFromJson(systemToJson(system), tech);
    EXPECT_EQ(loaded.name, system.name);
    EXPECT_EQ(loaded.singleDie, system.singleDie);
    ASSERT_EQ(loaded.chiplets.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(loaded.chiplets[i].name,
                  system.chiplets[i].name);
        EXPECT_EQ(loaded.chiplets[i].type,
                  system.chiplets[i].type);
        EXPECT_DOUBLE_EQ(loaded.chiplets[i].transistorsMtr,
                         system.chiplets[i].transistorsMtr);
        EXPECT_EQ(loaded.chiplets[i].reused,
                  system.chiplets[i].reused);
    }
}

TEST(ConfigLoader, PackageParamsRoundTrip)
{
    PackageParams params;
    params.arch = PackagingArch::Stack3d;
    params.bondType = BondType::HybridBond;
    params.hybridBondPitchUm = 2.0;
    params.rdlLayers = 8;
    params.router.flitWidthBits = 256;
    params.bridgeRangeMm = 3.0;

    const PackageParams loaded =
        packageParamsFromJson(packageParamsToJson(params));
    EXPECT_EQ(loaded.arch, params.arch);
    EXPECT_EQ(loaded.bondType, params.bondType);
    EXPECT_DOUBLE_EQ(loaded.hybridBondPitchUm, 2.0);
    EXPECT_EQ(loaded.rdlLayers, 8);
    EXPECT_EQ(loaded.router.flitWidthBits, 256);
    EXPECT_DOUBLE_EQ(loaded.bridgeRangeMm, 3.0);
}

TEST(ConfigLoader, PackageParamsDefaultsWhenKeysMissing)
{
    const PackageParams loaded =
        packageParamsFromJson(json::parse("{}"));
    const PackageParams defaults;
    EXPECT_EQ(loaded.arch, defaults.arch);
    EXPECT_EQ(loaded.rdlLayers, defaults.rdlLayers);
    EXPECT_DOUBLE_EQ(loaded.spacingMm, defaults.spacingMm);
}

TEST(ConfigLoader, DesignParamsRoundTrip)
{
    DesignParams params;
    params.designIterations = 42;
    params.chipletVolume = 5e5;
    const DesignParams loaded =
        designParamsFromJson(designParamsToJson(params));
    EXPECT_EQ(loaded.designIterations, 42);
    EXPECT_DOUBLE_EQ(loaded.chipletVolume, 5e5);
}

TEST(ConfigLoader, OperatingSpecRoundTripWithOptionals)
{
    OperatingSpec spec;
    spec.lifetimeYears = 4.0;
    spec.annualEnergyKwh = 1.5;
    const OperatingSpec loaded =
        operatingSpecFromJson(operatingSpecToJson(spec));
    EXPECT_DOUBLE_EQ(loaded.lifetimeYears, 4.0);
    ASSERT_TRUE(loaded.annualEnergyKwh.has_value());
    EXPECT_DOUBLE_EQ(*loaded.annualEnergyKwh, 1.5);
    EXPECT_FALSE(loaded.avgPowerW.has_value());

    OperatingSpec with_power;
    with_power.avgPowerW = 130.0;
    const OperatingSpec loaded2 =
        operatingSpecFromJson(operatingSpecToJson(with_power));
    ASSERT_TRUE(loaded2.avgPowerW.has_value());
    EXPECT_DOUBLE_EQ(*loaded2.avgPowerW, 130.0);
}

class DesignDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: gtest_discover_tests runs each case as
        // its own process, so a shared directory name races under
        // `ctest -j`.
        const auto *info = ::testing::UnitTest::GetInstance()
                               ->current_test_info();
        dir_ = std::filesystem::path(::testing::TempDir()) /
               (std::string("ecochip_design_dir_") +
                info->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    void
    writeFile(const std::string &name, const std::string &text)
    {
        std::ofstream out(dir_ / name);
        out << text;
    }

    std::filesystem::path dir_;
};

TEST_F(DesignDirTest, LoadsAllConfigFiles)
{
    writeFile("architecture.json", R"({
        "name": "dircase",
        "packaging": "passive_interposer",
        "chiplets": [
            {"name": "a", "type": "logic", "node_nm": 7,
             "area_mm2": 100.0},
            {"name": "b", "type": "memory", "node_nm": 10,
             "area_mm2": 40.0}
        ]})");
    writeFile("packageC.json",
              R"({"interposer_node_nm": 40,
                  "interposer_beol_layers": 6})");
    writeFile("designC.json", R"({"design_iterations": 50})");
    writeFile("operationalC.json", R"({"lifetime_years": 5})");

    TechDb tech;
    const DesignBundle bundle =
        loadDesignDirectory(dir_.string(), tech);
    EXPECT_EQ(bundle.system.name, "dircase");
    EXPECT_EQ(bundle.config.package.arch,
              PackagingArch::PassiveInterposer);
    EXPECT_DOUBLE_EQ(bundle.config.package.interposerNodeNm,
                     40.0);
    EXPECT_EQ(bundle.config.package.interposerBeolLayers, 6);
    EXPECT_EQ(bundle.config.design.designIterations, 50);
    EXPECT_DOUBLE_EQ(bundle.config.operating.lifetimeYears, 5.0);
}

TEST_F(DesignDirTest, ArchitectureOnlyUsesDefaults)
{
    writeFile("architecture.json", R"({
        "name": "minimal",
        "chiplets": [
            {"name": "a", "type": "logic", "node_nm": 7,
             "area_mm2": 100.0}
        ]})");
    TechDb tech;
    const DesignBundle bundle =
        loadDesignDirectory(dir_.string(), tech);
    EXPECT_EQ(bundle.config.package.arch,
              PackageParams().arch);
}

TEST(ConfigLoader, UnknownKeysAreRejectedWithKeyName)
{
    TechDb tech;
    // Top-level architecture typo.
    try {
        systemFromJson(json::parse(R"({
            "nmae": "soc",
            "chiplets": [{"name": "c", "node_nm": 7,
                          "area_mm2": 10.0}]})"),
                       tech);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("\"nmae\""),
                  std::string::npos)
            << e.what();
    }

    // Chiplet-level typo.
    EXPECT_THROW(
        systemFromJson(json::parse(R"({"chiplets": [
            {"name": "c", "node_nm": 7, "area_mm2": 10,
             "resued": true}]})"),
                       tech),
        ConfigError);

    // Knob-file typos: every loader rejects, naming the key.
    EXPECT_THROW(
        packageParamsFromJson(json::parse(R"({"rdl_layer": 4})")),
        ConfigError);
    EXPECT_THROW(packageParamsFromJson(json::parse(
                     R"({"router": {"prots": 5}})")),
                 ConfigError);
    EXPECT_THROW(designParamsFromJson(
                     json::parse(R"({"design_iters": 50})")),
                 ConfigError);
    EXPECT_THROW(operatingSpecFromJson(
                     json::parse(R"({"lifetime_yrs": 3})")),
                 ConfigError);
}

TEST_F(DesignDirTest, TypoedKeyReportsFileAndKey)
{
    writeFile("architecture.json", R"({
        "name": "typocase",
        "chiplets": [
            {"name": "a", "type": "logic", "node_nm": 7,
             "area_mm2": 100.0}
        ]})");
    writeFile("operationalC.json", R"({"liftime_years": 5})");

    TechDb tech;
    try {
        loadDesignDirectory(dir_.string(), tech);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("operationalC.json"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("\"liftime_years\""),
                  std::string::npos)
            << what;
    }
}

TEST_F(DesignDirTest, MissingArchitectureThrows)
{
    TechDb tech;
    EXPECT_THROW(loadDesignDirectory(dir_.string(), tech),
                 ConfigError);
    EXPECT_THROW(loadDesignDirectory("/no/such/dir", tech),
                 ConfigError);
}

TEST(ReportJson, CarriesAllSections)
{
    EcoChip estimator;
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, estimator.tech()));
    system.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 10.0, 50.0, estimator.tech()));
    const CarbonReport report = estimator.estimate(system);
    const json::Value doc = reportToJson(report);

    EXPECT_NEAR(doc.at("mfg_co2_kg").asNumber(), report.mfgCo2Kg,
                1e-12);
    EXPECT_NEAR(doc.at("embodied_co2_kg").asNumber(),
                report.embodiedCo2Kg(), 1e-12);
    EXPECT_NEAR(doc.at("total_co2_kg").asNumber(),
                report.totalCo2Kg(), 1e-12);
    EXPECT_EQ(doc.at("chiplets").size(), 2u);
    EXPECT_TRUE(doc.at("hi").contains("package_co2_kg"));
    EXPECT_TRUE(doc.at("operational").contains("co2_kg"));
    // Serialized report parses back.
    EXPECT_NO_THROW(json::parse(doc.dump(true)));
}

// ----------------------------------------------- wire identity

/** A small batch with success and failure outcomes -- the two
 *  shapes every wire serializer must handle. */
BatchReport
sampleBatchReport()
{
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    requests.push_back({ScenarioRef::scenario("no-such-scenario"),
                        EstimateSpec{}});
    SweepSpec sweep;
    sweep.nodesNm = {7.0, 10.0};
    requests.push_back({ScenarioRef::scenario("emr"), sweep});
    AnalysisEngine engine(2);
    return engine.runBatch(requests);
}

TEST(WireIdentity, WriterEmittersMatchDomDumpsByteForByte)
{
    const BatchReport report = sampleBatchReport();
    ASSERT_EQ(report.outcomes.size(), 3u);
    ASSERT_EQ(report.failed(), 1u);

    // Whole-report text equals the DOM dump in both modes.
    EXPECT_EQ(batchReportText(report, false),
              batchReportToJson(report).dump(false));
    EXPECT_EQ(batchReportText(report, true),
              batchReportToJson(report).dump(true));

    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const RequestOutcome &outcome = report.outcomes[i];
        json::StreamWriter writer;
        appendOutcome(writer, outcome);
        EXPECT_EQ(writer.take(),
                  outcomeToJson(outcome).dump(false))
            << i;

        json::StreamWriter event_writer;
        appendStreamEvent(event_writer, i, outcome);
        const std::string line = event_writer.take();
        EXPECT_EQ(line,
                  streamEventToJson(i, outcome).dump(false))
            << i;
        EXPECT_EQ(streamEventLine(i, outcome), line) << i;
    }
}

TEST(WireIdentity, JournalRoundTripPreservesCanonicalBytes)
{
    const BatchReport report = sampleBatchReport();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "ecochip_wire_identity_journal.ndjson")
            .string();
    std::filesystem::remove(path);

    EventJournalWriter journal;
    journal.open(path, false);
    // Interleave the text hot path with the DOM convenience
    // overload; the journal bytes must not care which was used.
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        if (i % 2 == 0) {
            json::StreamWriter writer;
            appendOutcome(writer, report.outcomes[i]);
            const std::string text = writer.take();
            journal.append(i, std::string_view(text));
        } else {
            journal.append(i,
                           outcomeToJson(report.outcomes[i]));
        }
    }

    const auto entries = replayEventJournalText(path);
    ASSERT_EQ(entries.size(), report.outcomes.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].index, i);
        // Replay yields canonical compact text: the exact bytes
        // of the DOM serializer, spliceable without a reparse.
        EXPECT_EQ(entries[i].outcome,
                  outcomeToJson(report.outcomes[i]).dump(false))
            << i;
        EXPECT_NO_THROW(
            json::ondemand::validate(entries[i].outcome));
    }

    // splitEventLine agrees with the replay on every line.
    std::ifstream in(path);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
        const auto entry = splitEventLine(line, path);
        EXPECT_EQ(entry.index, entries[n].index);
        EXPECT_EQ(entry.outcome, entries[n].outcome);
        ++n;
    }
    EXPECT_EQ(n, entries.size());
    std::filesystem::remove(path);
}

} // namespace
} // namespace ecochip
