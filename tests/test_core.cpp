/**
 * @file
 * Unit tests for the top-level estimator, disaggregation helpers,
 * explorer, and built-in testcases.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/disaggregate.h"
#include "core/ecochip.h"
#include "core/explorer.h"
#include "core/testcases.h"
#include "support/error.h"

namespace ecochip {
namespace {

class CoreTest : public ::testing::Test
{
  protected:
    EcoChipConfig
    ga102Config() const
    {
        EcoChipConfig config;
        config.operating = testcases::ga102Operating();
        return config;
    }
};

TEST_F(CoreTest, ReportIdentitiesHold)
{
    EcoChip estimator(ga102Config());
    const CarbonReport r = estimator.estimate(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 10.0,
                                     14.0));
    EXPECT_NEAR(r.embodiedCo2Kg(),
                r.mfgCo2Kg + r.hi.totalCo2Kg() + r.designCo2Kg,
                1e-12);
    EXPECT_NEAR(r.totalCo2Kg(),
                r.embodiedCo2Kg() + r.operation.co2Kg, 1e-12);
}

TEST_F(CoreTest, PerChipletMfgSumsToSystemMfg)
{
    EcoChip estimator(ga102Config());
    const CarbonReport r = estimator.estimate(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 10.0,
                                     14.0));
    double sum = 0.0;
    for (const auto &c : r.chiplets)
        sum += c.mfgCo2Kg;
    EXPECT_NEAR(sum, r.mfgCo2Kg, 1e-9);
    EXPECT_EQ(r.chiplets.size(), 3u);
}

TEST_F(CoreTest, MonolithBlockSharesSumToDie)
{
    EcoChip estimator(ga102Config());
    const CarbonReport r = estimator.estimate(
        testcases::ga102Monolithic(estimator.tech()));
    double sum = 0.0;
    for (const auto &c : r.chiplets) {
        sum += c.mfgCo2Kg;
        // All blocks of one die share the die's yield.
        EXPECT_DOUBLE_EQ(c.yield, r.chiplets.front().yield);
    }
    EXPECT_NEAR(sum, r.mfgCo2Kg, 1e-9);
}

TEST_F(CoreTest, EstimateIsDeterministic)
{
    EcoChip estimator(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    const CarbonReport a = estimator.estimate(system);
    const CarbonReport b = estimator.estimate(system);
    EXPECT_DOUBLE_EQ(a.totalCo2Kg(), b.totalCo2Kg());
    EXPECT_DOUBLE_EQ(a.hi.packageAreaMm2, b.hi.packageAreaMm2);
}

TEST_F(CoreTest, SetConfigChangesResults)
{
    EcoChip estimator(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    const double before =
        estimator.estimate(system).hi.totalCo2Kg();

    EcoChipConfig config = ga102Config();
    config.package.arch = PackagingArch::ActiveInterposer;
    estimator.setConfig(config);
    const double after =
        estimator.estimate(system).hi.totalCo2Kg();
    EXPECT_GT(after, before);
}

TEST_F(CoreTest, EmptySystemRejected)
{
    EcoChip estimator;
    SystemSpec empty;
    EXPECT_THROW(estimator.estimate(empty), ConfigError);
}

TEST(Disaggregate, ThreeChipletPreservesContent)
{
    TechDb tech;
    const SocBlocks blocks = testcases::ga102Blocks();
    const SystemSpec mono =
        makeMonolithic("m", blocks, tech, blocks.refNodeNm);
    const SystemSpec three = makeThreeChiplet(
        "t", blocks, tech, blocks.refNodeNm, blocks.refNodeNm,
        blocks.refNodeNm);
    EXPECT_NEAR(mono.totalTransistorsMtr(),
                three.totalTransistorsMtr(), 1e-9);
    EXPECT_TRUE(mono.singleDie);
    EXPECT_FALSE(three.singleDie);
    // At the reference node the areas match the die-shot inputs.
    EXPECT_NEAR(three.chiplet("digital").areaMm2(tech),
                blocks.logicAreaMm2, 1e-9);
    EXPECT_NEAR(three.chiplet("memory").areaMm2(tech),
                blocks.memoryAreaMm2, 1e-9);
    EXPECT_NEAR(three.chiplet("analog").areaMm2(tech),
                blocks.analogAreaMm2, 1e-9);
}

TEST(Disaggregate, DigitalSplitConservesTransistors)
{
    TechDb tech;
    const SocBlocks blocks = testcases::ga102Blocks();
    for (int n : {1, 2, 4, 7}) {
        const SystemSpec split = makeDigitalSplit(
            "s", blocks, tech, n, 7.0, 10.0, 14.0);
        EXPECT_EQ(split.chiplets.size(),
                  static_cast<std::size_t>(n + 2));
        const SystemSpec three =
            makeThreeChiplet("t", blocks, tech, 7.0, 10.0, 14.0);
        EXPECT_NEAR(split.totalTransistorsMtr(),
                    three.totalTransistorsMtr(), 1e-6);
    }
}

TEST(Disaggregate, UniformSplitConservesArea)
{
    TechDb tech;
    for (int n : {1, 2, 5, 8}) {
        const SystemSpec split =
            makeUniformSplit("u", 500.0, 7.0, n, tech);
        EXPECT_NEAR(split.totalSiliconAreaMm2(tech), 500.0, 1e-9);
        EXPECT_EQ(split.isMonolithic(), n == 1);
    }
}

TEST(Disaggregate, Validation)
{
    TechDb tech;
    SocBlocks bad;
    bad.logicAreaMm2 = 0.0;
    EXPECT_THROW(makeMonolithic("m", bad, tech, 7.0),
                 ConfigError);
    EXPECT_THROW(makeUniformSplit("u", 100.0, 7.0, 0, tech),
                 ConfigError);
    EXPECT_THROW(makeDigitalSplit("d", testcases::ga102Blocks(),
                                  tech, 0, 7.0, 10.0, 14.0),
                 ConfigError);
}

TEST(Explorer, SweepEnumeratesCartesianProduct)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    TechSpaceExplorer explorer(estimator);

    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    const auto points =
        explorer.sweep(system, {7.0, 10.0, 14.0});
    EXPECT_EQ(points.size(), 27u);

    // First point is the all-first-candidate assignment.
    EXPECT_EQ(points.front().label(), "(7,7,7)");
    EXPECT_EQ(points.back().label(), "(14,14,14)");
}

TEST(Explorer, PerChipletCandidateLists)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    TechSpaceExplorer explorer(estimator);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);

    const auto points = explorer.sweep(
        system, {{7.0}, {10.0, 14.0}, {10.0, 14.0, 22.0}});
    EXPECT_EQ(points.size(), 6u);
    for (const auto &p : points)
        EXPECT_DOUBLE_EQ(p.nodesNm[0], 7.0);
}

TEST(Explorer, BestSelectorsAgreeWithManualScan)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    TechSpaceExplorer explorer(estimator);
    const auto points = explorer.sweep(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 10.0,
                                     14.0),
        {7.0, 10.0, 14.0});

    const auto &best = TechSpaceExplorer::bestByEmbodied(points);
    for (const auto &p : points)
        EXPECT_LE(best.report.embodiedCo2Kg(),
                  p.report.embodiedCo2Kg());

    const auto &best_total =
        TechSpaceExplorer::bestByTotal(points);
    for (const auto &p : points)
        EXPECT_LE(best_total.report.totalCo2Kg(),
                  p.report.totalCo2Kg());
}

TEST(Explorer, Validation)
{
    EcoChip estimator;
    TechSpaceExplorer explorer(estimator);
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 10.0, estimator.tech()));
    EXPECT_THROW(
        explorer.sweep(system, std::vector<std::vector<double>>{
                                   {7.0}, {10.0}}),
        ConfigError);
    EXPECT_THROW(
        explorer.sweep(system,
                       std::vector<std::vector<double>>{{}}),
        ConfigError);
    EXPECT_THROW(TechSpaceExplorer::bestByEmbodied({}),
                 ConfigError);
}

TEST(Testcases, Ga102AreasMatchDieShot)
{
    TechDb tech;
    const SystemSpec mono = testcases::ga102Monolithic(tech);
    EXPECT_NEAR(mono.totalSiliconAreaMm2(tech), 628.0, 1e-6);
    const SystemSpec four = testcases::ga102FourChiplet(tech, 7.0);
    EXPECT_EQ(four.chiplets.size(), 4u);
    EXPECT_NEAR(four.totalSiliconAreaMm2(tech), 628.0, 1e-6);
}

TEST(Testcases, A15AreasMatchDieShot)
{
    TechDb tech;
    EXPECT_NEAR(testcases::a15Monolithic(tech)
                    .totalSiliconAreaMm2(tech),
                108.0, 1e-6);
}

TEST(Testcases, EmrTwinDiesShareOneDesign)
{
    TechDb tech;
    const SystemSpec emr = testcases::emrTwoChiplet(tech);
    ASSERT_EQ(emr.chiplets.size(), 2u);
    EXPECT_FALSE(emr.chiplets[0].reused);
    EXPECT_TRUE(emr.chiplets[1].reused);
    EXPECT_DOUBLE_EQ(emr.chiplets[0].transistorsMtr,
                     emr.chiplets[1].transistorsMtr);

    const SystemSpec mono = testcases::emrMonolithic(tech);
    EXPECT_TRUE(mono.singleDie);
    EXPECT_NEAR(mono.totalSiliconAreaMm2(tech), 2.0 * 763.0,
                1e-6);
}

TEST(Testcases, ArvrSweepShapesAndLabels)
{
    TechDb tech;
    const auto points = testcases::arvrSweep(tech);
    EXPECT_EQ(points.size(), 8u);
    for (const auto &p : points) {
        EXPECT_EQ(p.system.chiplets.size(),
                  static_cast<std::size_t>(p.sramTiers + 1));
        EXPECT_GT(p.latencyMs, 0.0);
        EXPECT_GT(p.avgPowerW, 0.0);
        // SRAM dies are commodity / reused.
        for (std::size_t i = 1; i < p.system.chiplets.size(); ++i)
            EXPECT_TRUE(p.system.chiplets[i].reused);
    }
    EXPECT_EQ(points[0].label, "2D-1K-2MB");
    EXPECT_EQ(points[1].label, "3D-1K-4MB");
    EXPECT_EQ(points[7].label, "3D-2K-16MB");

    // More tiers always reduce latency and power within a series.
    for (int i = 1; i < 4; ++i) {
        EXPECT_LT(points[i].latencyMs, points[i - 1].latencyMs);
        EXPECT_LT(points[i].avgPowerW, points[i - 1].avgPowerW);
    }
    EXPECT_THROW(testcases::arvrAccelerator(tech, "4K", 1),
                 ConfigError);
    EXPECT_THROW(testcases::arvrAccelerator(tech, "1K", 5),
                 ConfigError);
}

} // namespace
} // namespace ecochip
