/**
 * @file
 * Tests for the classical yield-model variants and the mesh
 * network performance estimator.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "noc/network_model.h"
#include "support/error.h"
#include "yield/yield_model.h"

namespace ecochip {
namespace {

TEST(YieldVariants, HandComputedValuesAtUnitDefects)
{
    // x = A*D0 = 1.
    EXPECT_NEAR(poissonYield(2.0, 0.5), std::exp(-1.0), 1e-12);
    const double murphy =
        std::pow((1.0 - std::exp(-1.0)) / 1.0, 2.0);
    EXPECT_NEAR(murphyYield(2.0, 0.5), murphy, 1e-12);
    EXPECT_NEAR(seedsYield(2.0, 0.5), 0.5, 1e-12);
}

TEST(YieldVariants, KnownOrderingAtModerateDefects)
{
    // Classical result (Cunningham): at the same A*D0,
    // Poisson < Murphy < negative binomial (alpha=3) < Seeds.
    const double a = 2.0, d0 = 0.5;
    const double p = poissonYield(a, d0);
    const double m = murphyYield(a, d0);
    const double nb = negativeBinomialYield(a, d0, 3.0);
    const double s = seedsYield(a, d0);
    EXPECT_LT(p, m);
    EXPECT_LT(m, nb);
    EXPECT_LT(nb, s);
}

TEST(YieldVariants, AllConvergeToOneAtZeroDefects)
{
    for (YieldModelKind kind :
         {YieldModelKind::NegativeBinomial,
          YieldModelKind::Poisson, YieldModelKind::Murphy,
          YieldModelKind::Seeds}) {
        EXPECT_DOUBLE_EQ(dieYield(kind, 0.0, 0.3, 3.0), 1.0)
            << toString(kind);
        EXPECT_DOUBLE_EQ(dieYield(kind, 5.0, 0.0, 3.0), 1.0)
            << toString(kind);
    }
}

TEST(YieldVariants, NegativeBinomialConvergesToSeedsAtAlphaOne)
{
    // NB with alpha = 1 is exactly the Seeds model.
    EXPECT_NEAR(negativeBinomialYield(3.0, 0.2, 1.0),
                seedsYield(3.0, 0.2), 1e-12);
}

TEST(YieldVariants, DecreasingInAreaForEveryKind)
{
    for (YieldModelKind kind :
         {YieldModelKind::NegativeBinomial,
          YieldModelKind::Poisson, YieldModelKind::Murphy,
          YieldModelKind::Seeds}) {
        double prev = 1.1;
        for (double a : {0.5, 1.0, 2.0, 4.0, 8.0}) {
            const double y = dieYield(kind, a, 0.2, 3.0);
            EXPECT_LT(y, prev) << toString(kind);
            EXPECT_GT(y, 0.0) << toString(kind);
            prev = y;
        }
    }
}

TEST(YieldVariants, StringRoundTrip)
{
    for (YieldModelKind kind :
         {YieldModelKind::NegativeBinomial,
          YieldModelKind::Poisson, YieldModelKind::Murphy,
          YieldModelKind::Seeds}) {
        EXPECT_EQ(yieldModelKindFromString(toString(kind)), kind);
    }
    EXPECT_THROW(yieldModelKindFromString("weibull"),
                 ConfigError);
}

TEST(YieldVariants, YieldModelFacadeHonorsKind)
{
    TechDb tech;
    YieldModel nb(tech);
    YieldModel poisson(tech, YieldModelKind::Poisson);
    EXPECT_EQ(poisson.kind(), YieldModelKind::Poisson);
    // Poisson is the pessimist.
    EXPECT_LT(poisson.dieYield(300.0, 7.0),
              nb.dieYield(300.0, 7.0));
}

class NetworkTest : public ::testing::Test
{
  protected:
    TechDb tech_;
    NetworkModel network_{tech_};
};

TEST_F(NetworkTest, SingleNodeHasNoHops)
{
    const NetworkEstimate e =
        network_.meshEstimate(1, 7.0, 1e9);
    EXPECT_EQ(e.columns, 1);
    EXPECT_EQ(e.rows, 1);
    EXPECT_DOUBLE_EQ(e.avgHops, 0.0);
    EXPECT_GT(e.avgLatencyNs, 0.0); // source router still counts
}

TEST_F(NetworkTest, MeshDimensionsCoverAllChiplets)
{
    for (int n : {2, 3, 4, 5, 6, 9, 12, 16, 30}) {
        const NetworkEstimate e =
            network_.meshEstimate(n, 7.0, 1e9);
        EXPECT_GE(e.columns * e.rows, n) << n;
        EXPECT_LE((e.columns - 1) * e.rows, n) << n;
    }
}

TEST_F(NetworkTest, HopsGrowWithMeshSize)
{
    double prev = -1.0;
    for (int n : {2, 4, 9, 16, 36, 64}) {
        const NetworkEstimate e =
            network_.meshEstimate(n, 7.0, 1e9);
        EXPECT_GT(e.avgHops, prev) << n;
        prev = e.avgHops;
    }
    // 2D mesh scaling: hops ~ (2/3) * sqrt(n) per dimension.
    const NetworkEstimate e16 =
        network_.meshEstimate(16, 7.0, 1e9);
    EXPECT_NEAR(e16.avgHops, 2.0 * (16.0 - 1.0) / 12.0, 1e-9);
}

TEST_F(NetworkTest, FasterClockLowersLatencyRaisesBandwidth)
{
    const NetworkEstimate slow =
        network_.meshEstimate(9, 7.0, 1e9);
    const NetworkEstimate fast =
        network_.meshEstimate(9, 7.0, 2e9);
    EXPECT_GT(slow.avgLatencyNs, fast.avgLatencyNs);
    EXPECT_LT(slow.bisectionBandwidthGbps,
              fast.bisectionBandwidthGbps);
}

TEST_F(NetworkTest, BisectionBandwidthByHand)
{
    // 3x3 mesh at 1 GHz, 512-bit flits: 2 * 3 * 512 Gbit/s.
    const NetworkEstimate e =
        network_.meshEstimate(9, 7.0, 1e9);
    EXPECT_NEAR(e.bisectionBandwidthGbps, 2.0 * 3.0 * 512.0,
                1e-9);
}

TEST_F(NetworkTest, LegacyNodeNetworkBurnsMorePower)
{
    const NetworkEstimate advanced =
        network_.meshEstimate(9, 7.0, 1e9);
    const NetworkEstimate legacy =
        network_.meshEstimate(9, 65.0, 1e9);
    EXPECT_GT(legacy.networkPowerW, advanced.networkPowerW);
}

TEST_F(NetworkTest, Validation)
{
    EXPECT_THROW(network_.meshEstimate(0, 7.0, 1e9),
                 ConfigError);
    EXPECT_THROW(network_.meshEstimate(4, 7.0, 0.0),
                 ConfigError);
    EXPECT_THROW(network_.meshEstimate(4, 7.0, 1e9, -1.0),
                 ConfigError);
}

} // namespace
} // namespace ecochip
