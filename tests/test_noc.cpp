/**
 * @file
 * Unit tests for the NoC router and PHY models.
 */

#include <gtest/gtest.h>

#include "noc/router_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

class RouterTest : public ::testing::Test
{
  protected:
    TechDb tech_;
    RouterModel router_{tech_};
};

TEST_F(RouterTest, TransistorBudgetMatchesFormula)
{
    // Defaults: P=5, W=512, B=4, V=4.
    const double p = 5, w = 512, v = 4, b = 4;
    const double expected = (p * v * b * w * 6.0 +     // buffers
                             p * p * w * 12.0 +        // crossbar
                             p * p * v * v * 10.0 +    // VC alloc
                             p * p * v * 10.0 +        // SW alloc
                             p * w * 8.0) /            // outputs
                            1e6;
    EXPECT_NEAR(router_.transistorsMtr(), expected, 1e-12);
}

TEST_F(RouterTest, BuffersDominateTransistorBudget)
{
    RouterParams deep;
    deep.buffersPerVc = 16;
    RouterModel deep_router(tech_, deep);
    EXPECT_GT(deep_router.transistorsMtr(),
              2.5 * router_.transistorsMtr());
}

TEST_F(RouterTest, AreaShrinksAtAdvancedNodes)
{
    // The core passive-vs-active interposer asymmetry: the same
    // router is much smaller in the chiplet's 7 nm than in the
    // interposer's 65 nm (Sec. III-D(2)).
    const double a7 = router_.areaMm2(7.0);
    const double a65 = router_.areaMm2(65.0);
    EXPECT_LT(a7, a65);
    EXPECT_GT(a65 / a7, 10.0);
}

TEST_F(RouterTest, RouterAreaIsSmallVersusChiplets)
{
    // "Routing overheads ... are small and near-negligible
    // compared to the core chiplet areas" even at 65 nm.
    EXPECT_LT(router_.areaMm2(65.0), 5.0);
    EXPECT_LT(router_.areaMm2(7.0), 0.1);
}

TEST_F(RouterTest, PowerScalesWithFlitRate)
{
    const double idle = router_.powerW(7.0, 0.0);
    const double slow = router_.powerW(7.0, 1e8);
    const double fast = router_.powerW(7.0, 1e9);
    EXPECT_GT(idle, 0.0); // leakage floor
    EXPECT_GT(slow, idle);
    EXPECT_GT(fast, slow);
    // Dynamic component is linear in the rate.
    EXPECT_NEAR(fast - idle, 10.0 * (slow - idle), 1e-9);
}

TEST_F(RouterTest, LegacyNodeRouterBurnsMorePower)
{
    EXPECT_GT(router_.powerW(65.0, 1e9), router_.powerW(7.0, 1e9));
    EXPECT_GT(router_.energyPerFlitNj(65.0),
              router_.energyPerFlitNj(7.0));
}

TEST_F(RouterTest, WiderFlitsCostMore)
{
    RouterParams wide;
    wide.flitWidthBits = 1024;
    RouterModel wide_router(tech_, wide);
    EXPECT_GT(wide_router.areaMm2(7.0), router_.areaMm2(7.0));
    EXPECT_GT(wide_router.energyPerFlitNj(7.0),
              router_.energyPerFlitNj(7.0));
}

TEST_F(RouterTest, ParameterValidation)
{
    RouterParams bad;
    bad.ports = 1;
    EXPECT_THROW(RouterModel(tech_, bad), ConfigError);
    bad = RouterParams();
    bad.flitWidthBits = 0;
    EXPECT_THROW(RouterModel(tech_, bad), ConfigError);
    bad = RouterParams();
    bad.buffersPerVc = 0;
    EXPECT_THROW(RouterModel(tech_, bad), ConfigError);
    bad = RouterParams();
    bad.virtualChannels = -1;
    EXPECT_THROW(RouterModel(tech_, bad), ConfigError);
    EXPECT_THROW(router_.powerW(7.0, -1.0), ConfigError);
}

TEST(PhyTest, PhyIsSmallIp)
{
    TechDb tech;
    PhyModel phy(tech);
    // "small additional areas when compared to the chiplets".
    EXPECT_LT(phy.areaMm2(7.0), 0.1);
    EXPECT_LT(phy.areaMm2(65.0), 1.0);
}

TEST(PhyTest, PhySmallerThanRouter)
{
    TechDb tech;
    PhyModel phy(tech);
    RouterModel router(tech);
    EXPECT_LT(phy.transistorsMtr(), router.transistorsMtr());
}

TEST(PhyTest, PowerScalesWithBitRateAndNode)
{
    TechDb tech;
    PhyModel phy(tech);
    EXPECT_GT(phy.powerW(7.0, 1e11), phy.powerW(7.0, 1e10));
    EXPECT_GT(phy.powerW(65.0, 1e11), phy.powerW(7.0, 1e11));
    EXPECT_THROW(phy.powerW(7.0, -1.0), ConfigError);
}

TEST(PhyTest, WidthValidation)
{
    TechDb tech;
    EXPECT_THROW(PhyModel(tech, 0), ConfigError);
}

} // namespace
} // namespace ecochip
