/**
 * @file
 * Unit and property tests for the recursive-bipartition slicing
 * floorplanner.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "floorplan/floorplan.h"
#include "support/error.h"

namespace ecochip {
namespace {

bool
rectanglesOverlap(const Placement &a, const Placement &b)
{
    const double eps = 1e-9;
    return a.xMm + a.widthMm > b.xMm + eps &&
           b.xMm + b.widthMm > a.xMm + eps &&
           a.yMm + a.heightMm > b.yMm + eps &&
           b.yMm + b.heightMm > a.yMm + eps;
}

TEST(Floorplan, SingleChipletIsItsOwnOutline)
{
    Floorplanner planner;
    const FloorplanResult fp = planner.plan({{"a", 100.0, 1.0}});
    EXPECT_NEAR(fp.areaMm2(), 100.0, 1e-9);
    EXPECT_NEAR(fp.whitespaceAreaMm2, 0.0, 1e-9);
    EXPECT_EQ(fp.placements.size(), 1u);
    EXPECT_TRUE(fp.adjacencies.empty());
}

TEST(Floorplan, TwoEqualSquaresAbutAcrossSpacing)
{
    Floorplanner planner(0.5);
    const FloorplanResult fp =
        planner.plan({{"a", 100.0, 1.0}, {"b", 100.0, 1.0}});
    // 10x10 dies side by side with 0.5 mm spacing.
    const double long_side = std::max(fp.widthMm, fp.heightMm);
    const double short_side = std::min(fp.widthMm, fp.heightMm);
    EXPECT_NEAR(long_side, 20.5, 1e-9);
    EXPECT_NEAR(short_side, 10.0, 1e-9);
    EXPECT_NEAR(fp.whitespaceAreaMm2, 0.5 * 10.0, 1e-9);

    ASSERT_EQ(fp.adjacencies.size(), 1u);
    EXPECT_NEAR(fp.adjacencies[0].overlapMm, 10.0, 1e-9);
}

TEST(Floorplan, AspectRatioShapesLeaves)
{
    // A pinned 4:1 aspect may be realized in either orientation.
    Floorplanner planner;
    const FloorplanResult fp = planner.plan({{"a", 100.0, 4.0}});
    const Placement &p = fp.placement("a");
    const double long_side = std::max(p.widthMm, p.heightMm);
    const double short_side = std::min(p.widthMm, p.heightMm);
    EXPECT_NEAR(long_side, 20.0, 1e-9);
    EXPECT_NEAR(short_side, 5.0, 1e-9);
}

TEST(Floorplan, AspectCandidatesReduceWhitespace)
{
    // Freeing the leaf aspect ratios lets the shape-curve search
    // shave whitespace on mismatched partitions.
    const std::vector<ChipletBox> boxes = {{"a", 200.0, 1.0},
                                           {"b", 90.0, 1.0},
                                           {"c", 40.0, 1.0},
                                           {"d", 15.0, 1.0}};
    Floorplanner square;
    Floorplanner shaped;
    shaped.setAspectCandidates({0.5, 0.75, 1.0, 1.5, 2.0});
    EXPECT_LE(shaped.plan(boxes).whitespaceAreaMm2,
              square.plan(boxes).whitespaceAreaMm2 + 1e-9);
}

TEST(Floorplan, AspectCandidateValidation)
{
    Floorplanner planner;
    EXPECT_THROW(planner.setAspectCandidates({}), ConfigError);
    EXPECT_THROW(planner.setAspectCandidates({1.0, -2.0}),
                 ConfigError);
    planner.setAspectCandidates({0.5, 2.0});
    EXPECT_EQ(planner.aspectCandidates().size(), 2u);
}

TEST(Floorplan, PlacementLookupThrowsOnUnknownName)
{
    Floorplanner planner;
    const FloorplanResult fp = planner.plan({{"a", 100.0, 1.0}});
    EXPECT_THROW(fp.placement("nope"), ConfigError);
}

TEST(Floorplan, InputValidation)
{
    Floorplanner planner;
    EXPECT_THROW(planner.plan(std::vector<ChipletBox>{}),
                 ConfigError);
    EXPECT_THROW(planner.plan({{"a", -5.0, 1.0}}), ConfigError);
    EXPECT_THROW(planner.plan({{"a", 5.0, 0.0}}), ConfigError);
    EXPECT_THROW(Floorplanner(-1.0), ConfigError);
}

TEST(Floorplan, DeterministicAcrossRuns)
{
    Floorplanner planner;
    const std::vector<ChipletBox> boxes = {
        {"a", 120.0, 1.0}, {"b", 35.0, 1.0}, {"c", 75.0, 1.0},
        {"d", 35.0, 1.0}, {"e", 200.0, 1.0}};
    const FloorplanResult fp1 = planner.plan(boxes);
    const FloorplanResult fp2 = planner.plan(boxes);
    ASSERT_EQ(fp1.placements.size(), fp2.placements.size());
    for (std::size_t i = 0; i < fp1.placements.size(); ++i) {
        EXPECT_EQ(fp1.placements[i].name, fp2.placements[i].name);
        EXPECT_DOUBLE_EQ(fp1.placements[i].xMm,
                         fp2.placements[i].xMm);
        EXPECT_DOUBLE_EQ(fp1.placements[i].yMm,
                         fp2.placements[i].yMm);
    }
}

TEST(Floorplan, AdjacencyPairsAreRealNeighbors)
{
    Floorplanner planner(0.5);
    const FloorplanResult fp = planner.plan(
        {{"a", 100.0, 1.0}, {"b", 64.0, 1.0}, {"c", 49.0, 1.0}});
    for (const auto &adj : fp.adjacencies) {
        EXPECT_NE(adj.first, adj.second);
        EXPECT_GT(adj.overlapMm, 0.0);
        // Overlap cannot exceed the smaller die edge.
        const Placement &pa = fp.placement(adj.first);
        const Placement &pb = fp.placement(adj.second);
        const double max_edge = std::max(
            std::max(pa.widthMm, pa.heightMm),
            std::max(pb.widthMm, pb.heightMm));
        EXPECT_LE(adj.overlapMm, max_edge + 1e-9);
    }
}

TEST(Floorplan, SystemSpecConvenienceOverload)
{
    TechDb tech;
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "x", DesignType::Logic, 7.0, 80.0, tech));
    system.chiplets.push_back(Chiplet::fromArea(
        "y", DesignType::Memory, 10.0, 40.0, tech));
    const FloorplanResult fp =
        Floorplanner().plan(system, tech);
    EXPECT_NEAR(fp.chipletAreaMm2, 120.0, 1e-9);
    EXPECT_EQ(fp.placements.size(), 2u);
}

/** Structural invariants across chiplet counts. */
class FloorplanPropertyTest : public ::testing::TestWithParam<int>
{
  protected:
    std::vector<ChipletBox>
    makeBoxes(int n) const
    {
        std::vector<ChipletBox> boxes;
        for (int i = 0; i < n; ++i) {
            // Deterministic pseudo-varied sizes 20 - 180 mm^2.
            const double area = 20.0 + 40.0 * (i % 5);
            std::string name("c");
            name += std::to_string(i);
            boxes.push_back({std::move(name), area, 1.0});
        }
        return boxes;
    }

    Floorplanner planner_{0.5};
};

TEST_P(FloorplanPropertyTest, NoPlacementsOverlap)
{
    const FloorplanResult fp = planner_.plan(makeBoxes(GetParam()));
    for (std::size_t i = 0; i < fp.placements.size(); ++i)
        for (std::size_t j = i + 1; j < fp.placements.size(); ++j)
            EXPECT_FALSE(rectanglesOverlap(fp.placements[i],
                                           fp.placements[j]))
                << fp.placements[i].name << " overlaps "
                << fp.placements[j].name;
}

TEST_P(FloorplanPropertyTest, PlacementsStayInsideOutline)
{
    const FloorplanResult fp = planner_.plan(makeBoxes(GetParam()));
    for (const auto &p : fp.placements) {
        EXPECT_GE(p.xMm, -1e-9);
        EXPECT_GE(p.yMm, -1e-9);
        EXPECT_LE(p.xMm + p.widthMm, fp.widthMm + 1e-9);
        EXPECT_LE(p.yMm + p.heightMm, fp.heightMm + 1e-9);
    }
}

TEST_P(FloorplanPropertyTest, WhitespaceIsNonNegativeAndBounded)
{
    const FloorplanResult fp = planner_.plan(makeBoxes(GetParam()));
    EXPECT_GE(fp.whitespaceAreaMm2, -1e-9);
    // A sane slicing plan of near-square dies wastes less than
    // 60% of the outline.
    EXPECT_LT(fp.whitespaceFraction(), 0.6);
}

TEST_P(FloorplanPropertyTest, OutlineCoversChipletArea)
{
    const FloorplanResult fp = planner_.plan(makeBoxes(GetParam()));
    EXPECT_GE(fp.areaMm2(), fp.chipletAreaMm2 - 1e-9);
    EXPECT_NEAR(fp.areaMm2() - fp.chipletAreaMm2,
                fp.whitespaceAreaMm2, 1e-6);
}

TEST_P(FloorplanPropertyTest, EveryChipletIsPlacedOnce)
{
    const int n = GetParam();
    const FloorplanResult fp = planner_.plan(makeBoxes(n));
    EXPECT_EQ(fp.placements.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_NO_THROW(fp.placement("c" + std::to_string(i)));
}

TEST_P(FloorplanPropertyTest, MultiChipletPlansHaveAdjacency)
{
    if (GetParam() < 2)
        GTEST_SKIP();
    const FloorplanResult fp = planner_.plan(makeBoxes(GetParam()));
    EXPECT_FALSE(fp.adjacencies.empty());
}

INSTANTIATE_TEST_SUITE_P(ChipletCounts, FloorplanPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10,
                                           16, 24, 40));

TEST(Floorplan, ZeroSpacingPacksTightly)
{
    Floorplanner planner(0.0);
    const FloorplanResult fp =
        planner.plan({{"a", 100.0, 1.0}, {"b", 100.0, 1.0}});
    EXPECT_NEAR(fp.whitespaceAreaMm2, 0.0, 1e-9);
}

TEST(Floorplan, PrunedCombineMatchesExhaustiveEnumeration)
{
    // The dominance cutoff in the slicing search only skips
    // provably dominated child-shape pairings; outline and every
    // placement must stay bit-identical to the exhaustive
    // enumeration. The 64-box set repeats areas (i % 5), the
    // strongest tie generator we have.
    for (int nc : {2, 3, 7, 16, 64}) {
        std::vector<ChipletBox> boxes;
        for (int i = 0; i < nc; ++i) {
            std::string name("c");
            name += std::to_string(i);
            boxes.push_back(
                {std::move(name), 50.0 + 13.0 * (i % 5), 1.0});
        }
        Floorplanner pruned;
        Floorplanner exhaustive;
        exhaustive.setExhaustiveCombine(true);
        ASSERT_FALSE(pruned.exhaustiveCombine());
        ASSERT_TRUE(exhaustive.exhaustiveCombine());

        const FloorplanResult fast = pruned.plan(boxes);
        const FloorplanResult slow = exhaustive.plan(boxes);
        EXPECT_EQ(fast.widthMm, slow.widthMm) << nc;
        EXPECT_EQ(fast.heightMm, slow.heightMm) << nc;
        ASSERT_EQ(fast.placements.size(), slow.placements.size());
        for (std::size_t i = 0; i < fast.placements.size(); ++i) {
            EXPECT_EQ(fast.placements[i].name,
                      slow.placements[i].name);
            EXPECT_EQ(fast.placements[i].xMm,
                      slow.placements[i].xMm);
            EXPECT_EQ(fast.placements[i].yMm,
                      slow.placements[i].yMm);
            EXPECT_EQ(fast.placements[i].widthMm,
                      slow.placements[i].widthMm);
        }
        ASSERT_EQ(fast.adjacencies.size(),
                  slow.adjacencies.size());
    }
}

TEST(Floorplan, WiderSpacingGrowsWhitespace)
{
    const std::vector<ChipletBox> boxes = {
        {"a", 100.0, 1.0}, {"b", 80.0, 1.0}, {"c", 60.0, 1.0}};
    const double tight =
        Floorplanner(0.1).plan(boxes).whitespaceAreaMm2;
    const double loose =
        Floorplanner(1.0).plan(boxes).whitespaceAreaMm2;
    EXPECT_GT(loose, tight);
}

} // namespace
} // namespace ecochip
