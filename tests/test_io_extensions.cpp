/**
 * @file
 * Tests for the report writer, node-list loading, the energy-mix
 * helper, and the shipped data/testcases design directories.
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/testcases.h"
#include "io/config_loader.h"
#include "io/report_writer.h"
#include "support/error.h"
#include "tech/carbon_intensity.h"

#ifndef ECOCHIP_DATA_DIR
#define ECOCHIP_DATA_DIR ""
#endif

namespace ecochip {
namespace {

TEST(ReportWriter, ContainsAllSections)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 14.0, 10.0);
    const CarbonReport report = estimator.estimate(system);

    const std::string md =
        markdownReport(system, report, config);
    EXPECT_NE(md.find("# ECO-CHIP carbon report: GA102-3c"),
              std::string::npos);
    EXPECT_NE(md.find("## Per-chiplet manufacturing"),
              std::string::npos);
    EXPECT_NE(md.find("## Carbon breakdown"), std::string::npos);
    EXPECT_NE(md.find("## Heterogeneous-integration detail"),
              std::string::npos);
    EXPECT_NE(md.find("## Operation"), std::string::npos);
    EXPECT_NE(md.find("digital"), std::string::npos);
    EXPECT_NE(md.find("rdl_fanout"), std::string::npos);
    EXPECT_NE(md.find("**total (Ctot)**"), std::string::npos);
}

TEST(ReportWriter, MonolithOmitsHiSection)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec mono =
        testcases::ga102Monolithic(estimator.tech());
    const std::string md = markdownReport(
        mono, estimator.estimate(mono), config);
    EXPECT_EQ(md.find("## Heterogeneous-integration detail"),
              std::string::npos);
    EXPECT_NE(md.find("monolithic die"), std::string::npos);
}

TEST(ReportWriter, NreRowOnlyWhenEnabled)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    config.includeMaskNre = true;
    EcoChip estimator(config);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 14.0, 10.0);
    const std::string md = markdownReport(
        system, estimator.estimate(system), config);
    EXPECT_NE(md.find("mask NRE"), std::string::npos);
}

class NodeListTest : public ::testing::Test
{
  protected:
    std::string
    writeList(const std::string &content)
    {
        const std::string path =
            ::testing::TempDir() + "/ecochip_nodes.txt";
        std::ofstream out(path);
        out << content;
        out.close();
        return path;
    }
};

TEST_F(NodeListTest, ParsesPlainAndSuffixedNodes)
{
    const auto nodes = loadNodeList(writeList(
        "7\n10nm\n\n# legacy candidates\n14 # analog\n"));
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_DOUBLE_EQ(nodes[0], 7.0);
    EXPECT_DOUBLE_EQ(nodes[1], 10.0);
    EXPECT_DOUBLE_EQ(nodes[2], 14.0);
}

TEST_F(NodeListTest, RejectsGarbageAndEmpty)
{
    EXPECT_THROW(loadNodeList(writeList("seven\n")), ConfigError);
    EXPECT_THROW(loadNodeList(writeList("-7\n")), ConfigError);
    EXPECT_THROW(loadNodeList(writeList("# only comments\n")),
                 ConfigError);
    EXPECT_THROW(loadNodeList("/no/such/file.txt"), ConfigError);
}

TEST(EnergyMix, WeightedAverage)
{
    // 50/50 coal+wind = (700 + 11) / 2.
    EXPECT_NEAR(mixedIntensityGPerKwh(
                    {{EnergySource::Coal, 0.5},
                     {EnergySource::Wind, 0.5}}),
                355.5, 1e-9);
    // Unnormalized weights behave the same.
    EXPECT_NEAR(mixedIntensityGPerKwh(
                    {{EnergySource::Coal, 2.0},
                     {EnergySource::Wind, 2.0}}),
                355.5, 1e-9);
    // Single source reduces to its own intensity.
    EXPECT_DOUBLE_EQ(
        mixedIntensityGPerKwh({{EnergySource::Solar, 1.0}}),
        carbonIntensityGPerKwh(EnergySource::Solar));
}

TEST(EnergyMix, Validation)
{
    EXPECT_THROW(mixedIntensityGPerKwh({}), ConfigError);
    EXPECT_THROW(mixedIntensityGPerKwh(
                     {{EnergySource::Coal, -1.0}}),
                 ConfigError);
    EXPECT_THROW(mixedIntensityGPerKwh(
                     {{EnergySource::Coal, 0.0}}),
                 ConfigError);
}

class ShippedDataTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        data_dir_ = ECOCHIP_DATA_DIR;
        if (data_dir_.empty() ||
            !std::filesystem::is_directory(data_dir_))
            GTEST_SKIP() << "data dir unavailable";
    }

    std::string data_dir_;
};

TEST_F(ShippedDataTest, AllTestcaseDirectoriesLoadAndEstimate)
{
    TechDb tech;
    for (const char *name : {"GA102", "A15", "EMR", "ARVR"}) {
        const std::string dir =
            data_dir_ + "/testcases/" + name;
        ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
        const DesignBundle bundle =
            loadDesignDirectory(dir, tech);
        EXPECT_FALSE(bundle.system.chiplets.empty()) << name;

        EcoChip estimator(bundle.config, tech);
        const CarbonReport report =
            estimator.estimate(bundle.system);
        EXPECT_GT(report.embodiedCo2Kg(), 0.0) << name;
        EXPECT_GT(report.totalCo2Kg(),
                  report.embodiedCo2Kg())
            << name;
    }
}

TEST_F(ShippedDataTest, Ga102DirMatchesBuiltinTestcase)
{
    TechDb tech;
    const DesignBundle bundle = loadDesignDirectory(
        data_dir_ + "/testcases/GA102", tech);
    // The shipped config mirrors the built-in (7,10,14)
    // three-chiplet testcase within area-inversion rounding.
    const SystemSpec builtin =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);
    ASSERT_EQ(bundle.system.chiplets.size(),
              builtin.chiplets.size());
    EXPECT_NEAR(bundle.system.chiplet("digital").areaMm2(tech),
                builtin.chiplet("digital").areaMm2(tech), 1.0);
}

} // namespace
} // namespace ecochip
