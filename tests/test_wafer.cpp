/**
 * @file
 * Unit and property tests for the wafer geometry model (Eqs. 7-8).
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "support/error.h"
#include "wafer/wafer_model.h"

namespace ecochip {
namespace {

TEST(WaferModel, AreaIsCircle)
{
    WaferModel wafer(300.0);
    EXPECT_NEAR(wafer.areaMm2(),
                std::numbers::pi * 150.0 * 150.0, 1e-9);
    EXPECT_DOUBLE_EQ(wafer.diameterMm(), 300.0);
}

TEST(WaferModel, DefaultIsPaper450mm)
{
    WaferModel wafer;
    EXPECT_DOUBLE_EQ(wafer.diameterMm(), 450.0);
}

TEST(WaferModel, DpwMatchesEq7ByHand)
{
    // 100 mm^2 die, side 10 mm, on a 450 mm wafer:
    // usable radius = 225 - 10/sqrt(2); DPW = floor(pi r^2 / 100).
    WaferModel wafer(450.0);
    const double r = 225.0 - 10.0 / std::numbers::sqrt2;
    const long expected = static_cast<long>(
        std::floor(std::numbers::pi * r * r / 100.0));
    EXPECT_EQ(wafer.diesPerWafer(100.0), expected);
}

TEST(WaferModel, WastedAreaMatchesEq8ByHand)
{
    WaferModel wafer(450.0);
    const long dpw = wafer.diesPerWafer(100.0);
    const double expected =
        (wafer.areaMm2() - dpw * 100.0) / dpw;
    EXPECT_NEAR(wafer.wastedAreaPerDieMm2(100.0), expected, 1e-9);
}

TEST(WaferModel, OversizedDieYieldsZeroDpw)
{
    WaferModel wafer(100.0);
    // Side 100 mm die cannot fit a 100 mm wafer.
    EXPECT_EQ(wafer.diesPerWafer(10000.0), 0);
    EXPECT_THROW(wafer.wastedAreaPerDieMm2(10000.0), ConfigError);
    EXPECT_DOUBLE_EQ(wafer.utilization(10000.0), 0.0);
}

TEST(WaferModel, InputValidation)
{
    EXPECT_THROW(WaferModel(0.0), ConfigError);
    EXPECT_THROW(WaferModel(-300.0), ConfigError);
    WaferModel wafer;
    EXPECT_THROW(wafer.diesPerWafer(0.0), ConfigError);
    EXPECT_THROW(wafer.diesPerWafer(-5.0), ConfigError);
}

/** Die-size sweep invariants. */
class WaferSweepTest : public ::testing::TestWithParam<double>
{
  protected:
    WaferModel wafer_;
};

TEST_P(WaferSweepTest, ExtractedAreaNeverExceedsWafer)
{
    const double die = GetParam();
    const long dpw = wafer_.diesPerWafer(die);
    EXPECT_LE(dpw * die, wafer_.areaMm2());
}

TEST_P(WaferSweepTest, UtilizationInUnitInterval)
{
    const double u = wafer_.utilization(GetParam());
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
}

TEST_P(WaferSweepTest, WastedPlusDieAreaIsConsistent)
{
    const double die = GetParam();
    const long dpw = wafer_.diesPerWafer(die);
    const double wasted = wafer_.wastedAreaPerDieMm2(die);
    EXPECT_NEAR(dpw * (die + wasted), wafer_.areaMm2(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(DieSizes, WaferSweepTest,
                         ::testing::Values(1.0, 10.0, 25.0, 64.0,
                                           100.0, 250.0, 628.0,
                                           1526.0));

TEST(WaferModel, SmallerDiesWasteLessPerDie)
{
    // The amortized wastage advantage of chiplets (Fig. 3): on
    // average across sizes, small dies waste far less silicon per
    // die than reticle-sized ones.
    WaferModel wafer;
    EXPECT_LT(wafer.wastedAreaPerDieMm2(25.0),
              wafer.wastedAreaPerDieMm2(628.0));
    EXPECT_LT(wafer.wastedAreaPerDieMm2(100.0),
              wafer.wastedAreaPerDieMm2(1526.0));
}

TEST(WaferModel, LargerWafersImproveUtilization)
{
    // Table I supports 25 - 450 mm wafers; bigger wafers waste
    // proportionally less periphery for the same die.
    const double die = 100.0;
    WaferModel small(200.0);
    WaferModel large(450.0);
    EXPECT_GT(large.utilization(die), small.utilization(die));
}

TEST(WaferModel, DpwScalesRoughlyInverselyWithDieArea)
{
    WaferModel wafer;
    const long dpw_100 = wafer.diesPerWafer(100.0);
    const long dpw_50 = wafer.diesPerWafer(50.0);
    EXPECT_GT(dpw_50, dpw_100);
    EXPECT_NEAR(static_cast<double>(dpw_50) / dpw_100, 2.0, 0.2);
}

} // namespace
} // namespace ecochip
