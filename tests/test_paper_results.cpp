/**
 * @file
 * Integration tests asserting the paper's headline results -- the
 * shape claims every figure reproduction rests on. Each test names
 * the paper section/figure it guards.
 */

#include <gtest/gtest.h>

#include "core/disaggregate.h"
#include "core/ecochip.h"
#include "core/explorer.h"
#include "core/testcases.h"
#include "manufacture/mfg_model.h"
#include "package/package_model.h"

namespace ecochip {
namespace {

EcoChip
ga102Estimator()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    config.operating = testcases::ga102Operating();
    return EcoChip(config);
}

TEST(PaperFig2a, MfgCarbonGrowsSuperlinearlyWithArea)
{
    TechDb tech;
    ManufacturingModel mfg(tech);
    const double c50 = mfg.dieMfg(50.0, 10.0).dieCo2Kg;
    const double c200 = mfg.dieMfg(200.0, 10.0).dieCo2Kg;
    EXPECT_GT(c200, 4.0 * c50);
}

TEST(PaperFig2b, FourChipletGa102BeatsMonolithEveryNode)
{
    EcoChip estimator = ga102Estimator();
    for (double node : {7.0, 10.0, 14.0}) {
        const CarbonReport mono = estimator.estimate(
            testcases::ga102Monolithic(estimator.tech(), node));
        const CarbonReport four = estimator.estimate(
            testcases::ga102FourChiplet(estimator.tech(), node));
        EXPECT_LT(four.mfgCo2Kg + four.hi.totalCo2Kg(),
                  mono.mfgCo2Kg)
            << "node " << node;
    }
}

TEST(PaperFig3b, WastageWidensChipletAdvantage)
{
    // Charging periphery wastage hurts the big monolithic die
    // more than the small chiplets.
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();

    config.includeWastage = false;
    EcoChip without(config);
    config.includeWastage = true;
    EcoChip with(config);

    const SystemSpec mono =
        testcases::ga102Monolithic(with.tech());
    const SystemSpec four =
        testcases::ga102FourChiplet(with.tech(), 7.0);

    const double mono_delta =
        with.estimate(mono).mfgCo2Kg -
        without.estimate(mono).mfgCo2Kg;
    const double four_delta =
        with.estimate(four).mfgCo2Kg -
        without.estimate(four).mfgCo2Kg;
    EXPECT_GT(mono_delta, four_delta);
    EXPECT_GT(four_delta, 0.0);
}

TEST(PaperFig6b, TotalCarbonRisesWithDefectDensity)
{
    double prev = 0.0;
    for (double d0 : {0.07, 0.15, 0.30}) {
        TechDb tech;
        tech.setDefectDensityTable(
            PiecewiseLinear({{3.0, d0}, {65.0, d0}}));
        EcoChipConfig config;
        config.operating = testcases::ga102Operating();
        EcoChip estimator(config, tech);
        const double total =
            estimator
                .estimate(testcases::ga102Monolithic(
                    estimator.tech()))
                .totalCo2Kg();
        EXPECT_GT(total, prev);
        prev = total;
    }
}

TEST(PaperFig7, BestTupleIsDigital7Memory14Analog10)
{
    EcoChip estimator = ga102Estimator();
    TechSpaceExplorer explorer(estimator);
    const auto points = explorer.sweep(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 10.0,
                                     14.0),
        {7.0, 10.0, 14.0});
    const auto &best = TechSpaceExplorer::bestByEmbodied(points);
    EXPECT_EQ(best.label(), "(7,14,10)");
}

TEST(PaperFig7, Uniform10nmTupleExceedsMonolith)
{
    // "(10,10,10) ... has a larger CFP than even the monolith."
    EcoChip estimator = ga102Estimator();
    const double mono =
        estimator
            .estimate(
                testcases::ga102Monolithic(estimator.tech()))
            .embodiedCo2Kg();
    const double ten =
        estimator
            .estimate(testcases::ga102ThreeChiplet(
                estimator.tech(), 10.0, 10.0, 10.0))
            .embodiedCo2Kg();
    EXPECT_GT(ten, mono);
}

TEST(PaperFig7, EmbodiedSavingVsMonolithInPaperBand)
{
    // "The Cemb of GA102 lowers by 30% when compared to its
    // monolithic counterpart" -- we require a saving in the
    // 10-40% band.
    EcoChip estimator = ga102Estimator();
    const double mono =
        estimator
            .estimate(
                testcases::ga102Monolithic(estimator.tech()))
            .embodiedCo2Kg();
    const double best =
        estimator
            .estimate(testcases::ga102ThreeChiplet(
                estimator.tech(), 7.0, 14.0, 10.0))
            .embodiedCo2Kg();
    const double saving = 1.0 - best / mono;
    EXPECT_GT(saving, 0.10);
    EXPECT_LT(saving, 0.40);
}

TEST(PaperFig7c, ActUnderestimatesByAtLeastTenKg)
{
    // "ACT ... can inaccurately estimate Cmfg by at least 10 kg
    // of CO2 emission (~20% of Cemb)."
    EcoChip estimator = ga102Estimator();
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 14.0, 10.0);
    const double ours =
        estimator.estimate(system).embodiedCo2Kg();
    const double act = estimator.actEmbodiedCo2Kg(system);
    EXPECT_GT(ours - act, 10.0);
}

TEST(PaperFig7d, Ga102EmbodiedIsRoughlyFifthOfTotal)
{
    // "the embodied carbon is approximately 20% of Ctot."
    EcoChip estimator = ga102Estimator();
    const CarbonReport r = estimator.estimate(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 14.0,
                                     10.0));
    const double frac = r.embodiedCo2Kg() / r.totalCo2Kg();
    EXPECT_GT(frac, 0.12);
    EXPECT_LT(frac, 0.32);
}

TEST(PaperFig7d, HiRaisesOperationalCarbon)
{
    // Chiplets in older nodes + NoC power raise Cop vs. the
    // monolith.
    EcoChip estimator = ga102Estimator();
    const double mono =
        estimator
            .estimate(
                testcases::ga102Monolithic(estimator.tech()))
            .operation.co2Kg;
    const double hi =
        estimator
            .estimate(testcases::ga102ThreeChiplet(
                estimator.tech(), 7.0, 14.0, 10.0))
            .operation.co2Kg;
    EXPECT_GT(hi, mono);
}

TEST(PaperFig8a, EmrIsOperationDominated)
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::SiliconBridge;
    config.operating = testcases::emrOperating();
    EcoChip estimator(config);
    const CarbonReport r = estimator.estimate(
        testcases::emrTwoChiplet(estimator.tech()));
    EXPECT_GT(r.operation.co2Kg / r.totalCo2Kg(), 0.6);
}

TEST(PaperFig8b, A15IsEmbodiedDominatedLikeAppleReport)
{
    // Validation against Apple's report: ~80% embodied / ~20%
    // operational for the monolithic A15 (Sec. VII).
    EcoChipConfig config;
    config.operating = testcases::a15Operating();
    EcoChip estimator(config);
    const CarbonReport r = estimator.estimate(
        testcases::a15Monolithic(estimator.tech()));
    const double emb_frac = r.embodiedCo2Kg() / r.totalCo2Kg();
    EXPECT_GT(emb_frac, 0.7);
    EXPECT_LT(emb_frac, 0.9);
}

TEST(PaperFig9, PackagingArchitectureOrderings)
{
    TechDb tech;
    ManufacturingModel mfg(tech);
    auto chi = [&](PackagingArch arch, int nc) {
        PackageParams pkg;
        pkg.arch = arch;
        const SystemSpec split = makeUniformSplit(
            "digital", 500.0, 7.0, nc, tech);
        return PackageModel(tech, mfg, pkg)
            .evaluate(split)
            .totalCo2Kg();
    };

    // EMIB cheapest at Nc=2; RDL cheapest at Nc=8.
    EXPECT_LT(chi(PackagingArch::SiliconBridge, 2),
              chi(PackagingArch::RdlFanout, 2));
    EXPECT_LT(chi(PackagingArch::RdlFanout, 8),
              chi(PackagingArch::SiliconBridge, 8));
    // Interposers costliest, active above passive.
    for (int nc : {2, 4, 8}) {
        EXPECT_GT(chi(PackagingArch::PassiveInterposer, nc),
                  chi(PackagingArch::RdlFanout, nc));
        EXPECT_GT(chi(PackagingArch::ActiveInterposer, nc),
                  chi(PackagingArch::PassiveInterposer, nc));
    }
    // 3D overhead falls with tier count.
    EXPECT_GT(chi(PackagingArch::Stack3d, 2),
              chi(PackagingArch::Stack3d, 4));
}

TEST(PaperFig10, MfgFallsAndChiRisesWithNc)
{
    EcoChip estimator = ga102Estimator();
    const CarbonReport r3 = estimator.estimate(
        testcases::ga102Split(estimator.tech(), 3));
    const CarbonReport r8 = estimator.estimate(
        testcases::ga102Split(estimator.tech(), 8));
    EXPECT_LT(r8.mfgCo2Kg, r3.mfgCo2Kg);
    // Combined savings persist but shrink per added chiplet.
    EXPECT_LT(r8.mfgCo2Kg + r8.hi.totalCo2Kg(),
              r3.mfgCo2Kg + r3.hi.totalCo2Kg());
}

TEST(PaperFig12, DesignCarbonAmortizesHyperbolically)
{
    const double ns = 100000.0;
    auto cdes = [&](double ratio) {
        EcoChipConfig config;
        config.design.systemVolume = ns;
        config.design.chipletVolume = ratio * ns;
        config.operating = testcases::emrOperating();
        EcoChip estimator(config);
        SystemSpec emr =
            testcases::emrTwoChiplet(estimator.tech(), 7.0);
        for (auto &c : emr.chiplets)
            c.reused = false;
        return estimator.estimate(emr).designCo2Kg;
    };
    const double at1 = cdes(1.0);
    const double at10 = cdes(10.0);
    EXPECT_NEAR(at1 / at10, 10.0, 0.2);
}

TEST(PaperFig13, EmbodiedGrowsWithSramTiers)
{
    TechDb tech;
    double prev = 0.0;
    for (int tiers = 1; tiers <= 4; ++tiers) {
        const auto point =
            testcases::arvrAccelerator(tech, "1K", tiers);
        EcoChipConfig config;
        config.package.arch = PackagingArch::Stack3d;
        config.operating = testcases::arvrOperating(point);
        EcoChip estimator(config, tech);
        const double emb =
            estimator.estimate(point.system).embodiedCo2Kg();
        EXPECT_GT(emb, prev);
        prev = emb;
    }
}

TEST(PaperFig13, TotalCarbonRisesAcrossSeriesEnds)
{
    // "although the delay improves, the embodied Cemb increases"
    // -> Ctot of the 4-tier stack exceeds the 1-tier stack.
    TechDb tech;
    for (const std::string series : {"1K", "2K"}) {
        auto ctot = [&](int tiers) {
            const auto point =
                testcases::arvrAccelerator(tech, series, tiers);
            EcoChipConfig config;
            config.package.arch = PackagingArch::Stack3d;
            config.operating = testcases::arvrOperating(point);
            EcoChip estimator(config, tech);
            return estimator.estimate(point.system).totalCo2Kg();
        };
        EXPECT_GT(ctot(4), ctot(1)) << series;
    }
}

TEST(PaperFig15, OlderNodeChipletsAreCheaper)
{
    EcoChip estimator = ga102Estimator();
    const double advanced =
        estimator
            .cost(testcases::ga102ThreeChiplet(estimator.tech(),
                                               7.0, 7.0, 7.0))
            .totalUsd();
    const double mixed =
        estimator
            .cost(testcases::ga102ThreeChiplet(estimator.tech(),
                                               7.0, 14.0, 10.0))
            .totalUsd();
    EXPECT_LT(mixed, advanced);
}

TEST(PaperSec5, LargeSocsBenefitMoreThanSmallOnes)
{
    // Key takeaway (c): GA102-class savings exceed A15-class
    // savings.
    EcoChip ga102 = ga102Estimator();
    const double ga102_saving =
        1.0 - ga102
                  .estimate(testcases::ga102ThreeChiplet(
                      ga102.tech(), 7.0, 14.0, 10.0))
                  .embodiedCo2Kg() /
                  ga102
                      .estimate(testcases::ga102Monolithic(
                          ga102.tech()))
                      .embodiedCo2Kg();

    EcoChipConfig a15_config;
    a15_config.operating = testcases::a15Operating();
    EcoChip a15(a15_config);
    const double a15_saving =
        1.0 - a15.estimate(testcases::a15ThreeChiplet(
                      a15.tech(), 5.0, 7.0, 10.0))
                  .embodiedCo2Kg() /
                  a15.estimate(
                         testcases::a15Monolithic(a15.tech()))
                      .embodiedCo2Kg();

    EXPECT_GT(ga102_saving, a15_saving);
    EXPECT_GT(a15_saving, 0.0);
}

} // namespace
} // namespace ecochip
