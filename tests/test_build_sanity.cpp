/**
 * @file
 * Build/link sanity: touches one symbol from each of the 17
 * `src/` subsystems so the `ecochip` library's link coverage is
 * total — a subsystem dropped from CMakeLists.txt fails this
 * suite at link time, not in some distant feature test.
 */

#include <gtest/gtest.h>

#include "act/act_model.h"
#include "analysis/montecarlo.h"
#include "analysis/sensitivity.h"
#include "chiplet/chiplet.h"
#include "core/ecochip.h"
#include "core/testcases.h"
#include "cost/cost_model.h"
#include "design/design_model.h"
#include "floorplan/floorplan.h"
#include "io/config_loader.h"
#include "io/report_writer.h"
#include "json/json.h"
#include "manufacture/mfg_model.h"
#include "noc/network_model.h"
#include "operation/operational_model.h"
#include "package/package_model.h"
#include "support/interp.h"
#include "support/stats.h"
#include "tech/carbon_intensity.h"
#include "tech/tech_db.h"
#include "wafer/wafer_model.h"
#include "yield/yield_model.h"

// The library leans on C++20 (std::numbers, std::span); a build
// configured for an older standard must fail loudly here rather
// than via obscure errors deep in the source tree. Checked via the
// feature macro, not __cplusplus, which MSVC misreports without
// /Zc:__cplusplus.
#include <version>
#if !defined(__cpp_lib_math_constants) ||                         \
    __cpp_lib_math_constants < 201907L
#error "ecochip requires C++20 (std::numbers); configure CMake " \
       "with a C++20-capable toolchain"
#endif

namespace ecochip {
namespace {

TEST(BuildSanity, EverySubsystemLinks)
{
    // tech
    TechDb tech;
    EXPECT_GT(carbonIntensityGPerKwh(EnergySource::Coal), 0.0);

    // wafer
    WaferModel wafer;
    EXPECT_GT(wafer.diesPerWafer(100.0), 0);

    // yield
    EXPECT_GT(negativeBinomialYield(1.0, 0.1, 2.0), 0.0);

    // chiplet
    const Chiplet chiplet = Chiplet::fromArea(
        "sanity", DesignType::Logic, 7.0, 50.0, tech);
    EXPECT_GT(chiplet.areaMm2(tech), 0.0);

    // manufacture
    ManufacturingModel mfg(tech);
    EXPECT_GT(mfg.chipletMfg(chiplet).dieCo2Kg, 0.0);

    // design
    DesignModel design(tech);
    EXPECT_GT(design.chipletDesign(chiplet).co2Kg, 0.0);

    // act
    ActModel act(tech);
    EXPECT_GT(act.dieCo2Kg(chiplet), 0.0);

    // noc
    NetworkModel network(tech);
    EXPECT_GT(network.meshEstimate(4, 7.0, 1.0e9).avgLatencyNs,
              0.0);

    // floorplan
    Floorplanner planner;
    const FloorplanResult plan =
        planner.plan({{"a", 50.0, 1.0}, {"b", 50.0, 1.0}});
    EXPECT_EQ(plan.placements.size(), 2u);

    // support
    const SampleStats stats({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
    const PiecewiseLinear interp({{0.0, 0.0}, {1.0, 2.0}});
    EXPECT_DOUBLE_EQ(interp.eval(0.5), 1.0);

    // json + io (config load path)
    const json::Value doc = json::parse(R"({
        "name": "sanity-soc",
        "chiplets": [
            {"name": "d", "type": "logic",
             "node_nm": 7, "area_mm2": 50.0}
        ]
    })");
    const SystemSpec from_json = systemFromJson(doc, tech);
    EXPECT_EQ(from_json.chiplets.size(), 1u);

    // core (full pipeline)
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec system =
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 10.0,
                                     14.0);
    const CarbonReport report = estimator.estimate(system);
    EXPECT_GT(report.totalCo2Kg(), 0.0);

    // package
    PackageModel package(tech, mfg);
    EXPECT_GE(package.evaluate(system).totalCo2Kg(), 0.0);

    // cost
    CostModel cost(tech);
    EXPECT_GT(cost.systemCost(system, PackageParams{}).dieUsd,
              0.0);

    // operation
    OperationalModel operation(tech, config.operating);
    EXPECT_GT(operation.evaluate(system).co2Kg, 0.0);

    // io (report path)
    const std::string markdown =
        markdownReport(system, report, config);
    EXPECT_FALSE(markdown.empty());

    // analysis
    const auto params = SensitivityAnalyzer::standardParameters();
    EXPECT_FALSE(params.empty());
    MonteCarloAnalyzer analyzer(config);
    const UncertaintyReport uncertainty =
        analyzer.run(system, 8, 1);
    EXPECT_GT(uncertainty.total.mean(), 0.0);
}

} // namespace
} // namespace ecochip
