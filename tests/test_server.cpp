/**
 * @file
 * Tests for the analysis server (`server/analysis_server.h`),
 * its content-addressed result cache, and the canonical request
 * serialization that cache keys hash: served responses
 * byte-identical to local engine outcomes (cold and on cache
 * hits), concurrent clients each getting exactly their answers,
 * malformed-line isolation, SIGTERM / shutdown-verb draining,
 * and corrupt cache entries recovering as misses instead of
 * crashes.
 *
 * Server processes are forked before the parent creates any
 * engine threads (the same fork-only discipline as the shard
 * runner's library mode), then driven through `ServerClient`.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/analysis_engine.h"
#include "io/batch_report_io.h"
#include "io/request_io.h"
#include "server/analysis_server.h"
#include "server/result_cache.h"
#include "server/server_client.h"
#include "support/error.h"
#include "support/sha256.h"

#if defined(__unix__) || defined(__APPLE__)
#define ECOCHIP_TEST_HAS_FORK 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#else
#define ECOCHIP_TEST_HAS_FORK 0
#endif

namespace ecochip {
namespace {

// ------------------------------------------------ canonical text

TEST(CanonicalRequest, StableAcrossJsonRoundTrip)
{
    std::vector<AnalysisRequest> requests = {
        {ScenarioRef::scenario("ga102"), EstimateSpec{}},
        {ScenarioRef::scenario("emr"),
         SweepSpec{{7.0, 10.0, 14.0}, {}}},
        {ScenarioRef::scenario("waferscale"),
         MonteCarloSpec{256, 7, 1, {}}},
        {ScenarioRef::scenario("cpu-mono"), CostSpec{}},
    };
    for (const auto &request : requests) {
        const std::string canonical =
            canonicalRequestText(request);
        const AnalysisRequest reparsed = requestFromJson(
            json::parse(canonical), "canonical round-trip");
        EXPECT_EQ(canonicalRequestText(reparsed), canonical);
    }
}

TEST(CanonicalRequest, MonteCarloThreadsDoNotChangeTheText)
{
    // threads is a scheduling knob -- results are bit-identical
    // at any count -- so it must not split the cache key space.
    AnalysisRequest one = {ScenarioRef::scenario("ga102"),
                           MonteCarloSpec{512, 42, 1, {}}};
    AnalysisRequest eight = one;
    std::get<MonteCarloSpec>(eight.spec).threads = 8;
    EXPECT_EQ(canonicalRequestText(one),
              canonicalRequestText(eight));
    EXPECT_EQ(resultCacheKey(one, "fp"),
              resultCacheKey(eight, "fp"));
}

TEST(CanonicalRequest, SemanticChangesChangeTheKey)
{
    const AnalysisRequest base = {
        ScenarioRef::scenario("ga102"),
        MonteCarloSpec{512, 42, 1, {}}};
    AnalysisRequest seed = base;
    std::get<MonteCarloSpec>(seed.spec).seed = 43;
    AnalysisRequest scenario = base;
    scenario.scenario = ScenarioRef::scenario("emr");

    const std::string key = resultCacheKey(base, "fp");
    EXPECT_NE(resultCacheKey(seed, "fp"), key);
    EXPECT_NE(resultCacheKey(scenario, "fp"), key);
    // ... and so does serving a different catalog.
    EXPECT_NE(resultCacheKey(base, "other-fp"), key);
    EXPECT_EQ(key.size(), 64u);
}

TEST(Sha256, MatchesKnownVectors)
{
    // FIPS 180-4 test vectors -- the cache key derivation is
    // only as portable as the digest underneath it.
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex(std::string(1000000, 'a')),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

// ------------------------------------------------ result cache

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Unique per test case: ctest runs each case as its own
        // process, so a shared directory would let one SetUp's
        // remove_all race another case's store/lookup under -j.
        dir_ = std::filesystem::path(::testing::TempDir()) /
               (std::string("ecochip_result_cache_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::remove_all(dir_);
    }

    std::string dirStr() const { return dir_.string(); }

    std::filesystem::path dir_;
};

TEST_F(ResultCacheTest, StoreLookupRoundTripsAndCounts)
{
    ResultCache cache({dirStr(), 0});
    json::Value result = json::Value::makeObject();
    result.set("kind", "estimate");
    result.set("detail", "x");

    const std::string key(64, 'a');
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.store(key, result);
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->dump(false), result.dump(false));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(ResultCacheTest, SurvivesReopenAndIndexLoss)
{
    const std::string key(64, 'b');
    {
        ResultCache cache({dirStr(), 0});
        json::Value result = json::Value::makeObject();
        result.set("detail", "persisted");
        cache.store(key, result);
        cache.flushIndex();
    }
    {
        ResultCache cache({dirStr(), 0});
        ASSERT_TRUE(cache.lookup(key).has_value());
    }
    // Corrupt the index (crash before flushIndex): the object
    // tree is the truth and entries must still be found.
    std::ofstream(dir_ / "index.json") << "{ truncated";
    {
        ResultCache cache({dirStr(), 0});
        ASSERT_TRUE(cache.lookup(key).has_value());
    }
}

TEST_F(ResultCacheTest, TruncatedObjectRecomputesInsteadOfCrash)
{
    ResultCache cache({dirStr(), 0});
    json::Value result = json::Value::makeObject();
    result.set("detail", "will be truncated");
    const std::string key(64, 'c');
    cache.store(key, result);

    // Truncate the object file mid-JSON.
    const auto object =
        dir_ / "objects" / key.substr(0, 2) / (key + ".json");
    std::ofstream(object, std::ios::trunc) << "{\"detail\": \"wi";

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
    // A fresh store of the recomputed result heals the entry.
    cache.store(key, result);
    ASSERT_TRUE(cache.lookup(key).has_value());
}

TEST_F(ResultCacheTest, LruEvictionKeepsTheHotEntries)
{
    ResultCache cache({dirStr(), 2});
    json::Value result = json::Value::makeObject();
    result.set("detail", "x");
    const std::string a(64, 'a'), b(64, 'b'), c(64, 'd');
    cache.store(a, result);
    cache.store(b, result);
    ASSERT_TRUE(cache.lookup(a).has_value()); // a is now hot
    cache.store(c, result);                   // evicts b
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.lookup(a).has_value());
    EXPECT_FALSE(cache.lookup(b).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());
}

#if ECOCHIP_TEST_HAS_FORK

// ------------------------------------------------ live server

/**
 * A forked `--serve`-equivalent child process. Fork happens
 * before the parent test creates any engine threads; the child
 * constructs the server, runs until drained, and _exits with 0
 * (clean drain) or 17 (construction/run threw).
 */
class ServerProcess
{
  public:
    explicit ServerProcess(ServerOptions options)
        : socket_(options.socketPath)
    {
        pid_ = fork();
        if (pid_ == 0) {
            try {
                AnalysisServer server(std::move(options));
                server.run();
                _exit(0);
            } catch (...) {
                _exit(17);
            }
        }
    }

    ~ServerProcess()
    {
        if (pid_ > 0) {
            kill(pid_, SIGKILL);
            int status = 0;
            waitpid(pid_, &status, 0);
        }
    }

    bool started() const { return pid_ > 0; }

    void signal(int signo) const { kill(pid_, signo); }

    /** Reap the child; returns its exit code (-1 on signal). */
    int waitForExit()
    {
        int status = 0;
        waitpid(pid_, &status, 0);
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    const std::string &socketPath() const { return socket_; }

  private:
    pid_t pid_ = -1;
    std::string socket_;
};

/** Short socket path under /tmp (sun_path is ~108 bytes). */
std::string
testSocket(const std::string &name)
{
    return "/tmp/eco_t_" + name + "_" +
           std::to_string(getpid()) + ".sock";
}

ServerOptions
serverOptions(const std::string &name)
{
    ServerOptions options;
    options.socketPath = testSocket(name);
    options.engineThreads = 2;
    return options;
}

std::vector<AnalysisRequest>
builtinEstimateRequests()
{
    std::vector<AnalysisRequest> requests;
    for (const auto &name : ScenarioRegistry::builtin().names())
        requests.push_back(
            {ScenarioRef::scenario(name), EstimateSpec{}});
    return requests;
}

/** Send every request, read one line each, order by index. */
std::vector<std::string>
serveAll(ServerClient &client,
         const std::vector<AnalysisRequest> &requests)
{
    for (const auto &request : requests)
        client.sendLine(requestToJson(request).dump(false));
    std::vector<std::string> by_index(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        std::string line = client.readLine();
        const auto index = static_cast<std::size_t>(
            json::parse(line).at("index").asInteger());
        EXPECT_LT(index, by_index.size());
        EXPECT_TRUE(by_index[index].empty())
            << "duplicate index " << index;
        by_index[index] = std::move(line);
    }
    return by_index;
}

TEST(AnalysisServer,
     ServedLinesMatchLocalStreamEventsForAllBuiltins)
{
    // The tentpole acceptance gate: for every builtin scenario,
    // the served response line is byte-identical to the NDJSON
    // stream event a local `--batch --stream` run emits.
    ServerProcess server(serverOptions("equiv"));
    ASSERT_TRUE(server.started());
    ASSERT_TRUE(ServerClient::waitForServer(
        server.socketPath(), 15.0));

    const auto requests = builtinEstimateRequests();
    ASSERT_GE(requests.size(), 9u);

    // Local reference outcomes (scoped: threads join before any
    // later test forks).
    std::vector<std::string> expected(requests.size());
    {
        AnalysisEngine engine(2);
        const BatchReport report = engine.runBatch(requests);
        for (std::size_t i = 0; i < requests.size(); ++i)
            expected[i] = streamEventLine(
                i, report.outcomes[i]);
    }

    ServerClient client(server.socketPath());
    const auto served = serveAll(client, requests);
    for (std::size_t i = 0; i < requests.size(); ++i)
        EXPECT_EQ(served[i], expected[i]) << "request " << i;

    client.shutdownServer();
    EXPECT_EQ(server.waitForExit(), 0);
}

TEST(AnalysisServer, CacheHitsAreByteIdenticalToColdAnswers)
{
    const auto cache_dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_serve_cache";
    std::filesystem::remove_all(cache_dir);

    ServerOptions options = serverOptions("cache");
    options.cacheDir = cache_dir.string();
    ServerProcess server(std::move(options));
    ASSERT_TRUE(server.started());
    ASSERT_TRUE(ServerClient::waitForServer(
        server.socketPath(), 15.0));

    const auto requests = builtinEstimateRequests();

    ServerClient cold_client(server.socketPath());
    const auto cold = serveAll(cold_client, requests);

    ServerClient warm_client(server.socketPath());
    const auto warm = serveAll(warm_client, requests);

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
        EXPECT_EQ(warm[i], cold[i]) << "request " << i;

    // Round two must have come from the cache, and the stats
    // verb must say so.
    const json::Value stats = warm_client.stats();
    EXPECT_GE(stats.at("hits").asInteger(),
              static_cast<long long>(requests.size()));
    EXPECT_EQ(static_cast<std::size_t>(
                  stats.at("misses").asInteger()),
              requests.size());
    EXPECT_TRUE(stats.at("cache_enabled").asBoolean());
    EXPECT_GT(stats.at("contexts").asInteger(), 0);
    EXPECT_EQ(stats.at("malformed").asInteger(), 0);

    warm_client.shutdownServer();
    EXPECT_EQ(server.waitForExit(), 0);

    // The drained server flushed its LRU index.
    EXPECT_TRUE(
        std::filesystem::exists(cache_dir / "index.json"));
}

TEST(AnalysisServer, ConcurrentClientsGetExactlyTheirAnswers)
{
    // Multi-client soak (runs under TSan in CI): several client
    // threads each submit the full builtin estimate set on their
    // own connection and must read back exactly their answers --
    // every index once, every outcome ok.
    ServerProcess server(serverOptions("soak"));
    ASSERT_TRUE(server.started());
    ASSERT_TRUE(ServerClient::waitForServer(
        server.socketPath(), 15.0));

    const auto requests = builtinEstimateRequests();
    constexpr int kClients = 6;

    std::mutex mutex;
    std::vector<std::string> failures;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c]() {
            try {
                ServerClient client(server.socketPath());
                const auto lines = serveAll(client, requests);
                for (std::size_t i = 0; i < lines.size(); ++i) {
                    const json::Value event =
                        json::parse(lines[i]);
                    if (!event.at("ok").asBoolean()) {
                        const std::lock_guard<std::mutex> lock(
                            mutex);
                        failures.push_back(
                            "client " + std::to_string(c) +
                            " request " + std::to_string(i) +
                            " failed");
                    }
                }
            } catch (const std::exception &e) {
                const std::lock_guard<std::mutex> lock(mutex);
                failures.push_back("client " +
                                   std::to_string(c) + ": " +
                                   e.what());
            }
        });
    }
    for (auto &thread : clients)
        thread.join();
    EXPECT_TRUE(failures.empty())
        << ::testing::PrintToString(failures);

    ServerClient control(server.socketPath());
    const json::Value stats = control.stats();
    EXPECT_EQ(static_cast<std::size_t>(
                  stats.at("served").asInteger()),
              requests.size() * kClients);
    control.shutdownServer();
    EXPECT_EQ(server.waitForExit(), 0);
}

TEST(AnalysisServer, MalformedLinesAreIsolatedPerConnection)
{
    ServerProcess server(serverOptions("malformed"));
    ASSERT_TRUE(server.started());
    ASSERT_TRUE(ServerClient::waitForServer(
        server.socketPath(), 15.0));

    ServerClient client(server.socketPath());
    client.sendLine("this is not json");
    client.sendLine(
        requestToJson({ScenarioRef::scenario("ga102"),
                       EstimateSpec{}})
            .dump(false));
    client.sendLine("{\"kind\": \"no-such-kind\"}");

    std::map<std::size_t, json::Value> by_index;
    for (int i = 0; i < 3; ++i) {
        const json::Value event =
            json::parse(client.readLine());
        by_index.emplace(static_cast<std::size_t>(
                             event.at("index").asInteger()),
                         event);
    }
    ASSERT_EQ(by_index.size(), 3u);
    EXPECT_FALSE(by_index.at(0).at("ok").asBoolean());
    EXPECT_TRUE(by_index.at(1).at("ok").asBoolean());
    EXPECT_FALSE(by_index.at(2).at("ok").asBoolean());
    EXPECT_FALSE(
        by_index.at(2).at("error").asString().empty());

    // The daemon survived all of it and counted the damage.
    const json::Value stats = client.stats();
    EXPECT_EQ(stats.at("malformed").asInteger(), 2);
    EXPECT_EQ(stats.at("served").asInteger(), 1);
    EXPECT_EQ(stats.at("failed").asInteger(), 0);

    client.shutdownServer();
    EXPECT_EQ(server.waitForExit(), 0);
}

TEST(AnalysisServer, SigtermDrainsInFlightRequests)
{
    ServerOptions options = serverOptions("sigterm");
    options.installSignalHandlers = true;
    ServerProcess server(std::move(options));
    ASSERT_TRUE(server.started());
    ASSERT_TRUE(ServerClient::waitForServer(
        server.socketPath(), 15.0));

    ServerClient client(server.socketPath());
    // A request slow enough to still be in flight when the
    // signal lands.
    client.sendLine(
        requestToJson({ScenarioRef::scenario("ga102"),
                       MonteCarloSpec{20000, 42, 1, {}}})
            .dump(false));
    // The stats round-trip proves the server has read and
    // dispatched the line (lines on one connection are processed
    // in order), so SIGTERM now arrives mid-request.
    client.stats();
    server.signal(SIGTERM);

    // The drain must still deliver the in-flight answer.
    const json::Value event = json::parse(client.readLine());
    EXPECT_EQ(event.at("index").asInteger(), 0);
    EXPECT_TRUE(event.at("ok").asBoolean());
    EXPECT_EQ(server.waitForExit(), 0);
}

TEST(AnalysisServer, RefusesToDoubleBindALiveSocket)
{
    ServerProcess server(serverOptions("double"));
    ASSERT_TRUE(server.started());
    ASSERT_TRUE(ServerClient::waitForServer(
        server.socketPath(), 15.0));

    // Same path, live server behind it: constructing a second
    // server must throw instead of stealing the socket.
    ServerOptions duplicate = serverOptions("double");
    EXPECT_THROW(AnalysisServer second(std::move(duplicate)),
                 ConfigError);

    ServerClient client(server.socketPath());
    client.shutdownServer();
    EXPECT_EQ(server.waitForExit(), 0);
}

#endif // ECOCHIP_TEST_HAS_FORK

} // namespace
} // namespace ecochip
