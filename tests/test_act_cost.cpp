/**
 * @file
 * Unit tests for the ACT baseline and the dollar-cost model.
 */

#include <gtest/gtest.h>

#include "act/act_model.h"
#include "core/ecochip.h"
#include "core/testcases.h"
#include "cost/cost_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

std::string
indexedName(char prefix, int i)
{
    std::string name(1, prefix);
    name += std::to_string(i);
    return name;
}

class ActTest : public ::testing::Test
{
  protected:
    TechDb tech_;
    ActModel act_{tech_};
};

TEST_F(ActTest, FixedPackageConstant)
{
    // An (unrealistically) tiny die leaves mostly the 150 g
    // package constant.
    SystemSpec tiny;
    tiny.chiplets.push_back(Chiplet::fromArea(
        "t", DesignType::Logic, 7.0, 0.01, tech_));
    EXPECT_NEAR(act_.embodiedCo2Kg(tiny), ActModel::kPackageCo2Kg,
                0.001);
}

TEST_F(ActTest, NoEquipmentDerateMakesActEnergyTermHigher)
{
    // Per unit area ACT's CFPA exceeds ECO-CHIP's because it
    // skips eta_eq < 1 (everything else equal, no wastage).
    ManufacturingModel mfg(tech_);
    mfg.setIncludeWastage(false);
    const Chiplet c = Chiplet::fromArea(
        "c", DesignType::Logic, 65.0, 100.0, tech_);
    EXPECT_GT(act_.dieCo2Kg(c), mfg.chipletMfg(c).totalCo2Kg());
}

TEST_F(ActTest, UnderestimatesEmbodiedForChipletSystems)
{
    // The Fig. 7(c) claim: ACT misses design CFP, wafer wastage,
    // and area-dependent packaging.
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 14.0, 10.0);
    EXPECT_LT(estimator.actEmbodiedCo2Kg(system),
              estimator.estimate(system).embodiedCo2Kg());
}

TEST_F(ActTest, SingleDieCombinesBlocks)
{
    SystemSpec mono;
    mono.singleDie = true;
    mono.chiplets.push_back(Chiplet::fromArea(
        "logic", DesignType::Logic, 7.0, 100.0, tech_));
    mono.chiplets.push_back(Chiplet::fromArea(
        "mem", DesignType::Memory, 7.0, 100.0, tech_));

    SystemSpec split = mono;
    split.singleDie = false;
    // One 200 mm^2 die yields worse than two 100 mm^2 dies.
    EXPECT_GT(act_.embodiedCo2Kg(mono),
              act_.embodiedCo2Kg(split));
}

TEST_F(ActTest, Validation)
{
    EXPECT_THROW(ActModel(tech_, 0.0), ConfigError);
    SystemSpec empty;
    EXPECT_THROW(act_.embodiedCo2Kg(empty), ConfigError);
}

class CostTest : public ::testing::Test
{
  protected:
    TechDb tech_;
    CostModel cost_{tech_};
};

TEST_F(CostTest, DieCostIsWaferOverDpwAndYield)
{
    const Chiplet c = Chiplet::fromArea(
        "c", DesignType::Logic, 7.0, 100.0, tech_);
    WaferModel wafer;
    YieldModel ym(tech_);
    const double expected =
        tech_.waferCostUsd(7.0) /
        (wafer.diesPerWafer(100.0) * ym.dieYield(100.0, 7.0));
    EXPECT_NEAR(cost_.dieCostUsd(c), expected, 1e-9);
}

TEST_F(CostTest, LegacyNodesAreCheaperPerDie)
{
    // Same content: cheaper wafers and better yield beat the
    // larger legacy-node area for memory/analog-class blocks.
    const Chiplet analog7 = Chiplet::fromArea(
        "a", DesignType::Analog, 7.0, 50.0, tech_);
    Chiplet analog28 = analog7;
    analog28.nodeNm = 28.0;
    EXPECT_GT(cost_.dieCostUsd(analog7),
              cost_.dieCostUsd(analog28));
}

TEST_F(CostTest, NreAmortizesOverVolume)
{
    const Chiplet c = Chiplet::fromArea(
        "c", DesignType::Logic, 7.0, 100.0, tech_);
    EXPECT_NEAR(cost_.nreCostUsd(c),
                tech_.maskSetCostUsd(7.0) / 100000.0, 1e-9);

    Chiplet reused = c;
    reused.reused = true;
    EXPECT_DOUBLE_EQ(cost_.nreCostUsd(reused), 0.0);
}

TEST_F(CostTest, MonolithPaysOneMaskSet)
{
    SystemSpec mono;
    mono.singleDie = true;
    mono.chiplets.push_back(Chiplet::fromArea(
        "logic", DesignType::Logic, 7.0, 300.0, tech_));
    mono.chiplets.push_back(Chiplet::fromArea(
        "mem", DesignType::Memory, 7.0, 100.0, tech_));

    const CostBreakdown b =
        cost_.systemCost(mono, PackageParams());
    EXPECT_NEAR(b.nreUsd, tech_.maskSetCostUsd(7.0) / 100000.0,
                1e-9);
    EXPECT_GT(b.dieUsd, 0.0);
    EXPECT_GT(b.packageUsd, 0.0);
}

TEST_F(CostTest, AssemblyGrowsWithChipletCount)
{
    PackageParams pkg;
    pkg.arch = PackagingArch::RdlFanout;

    auto assembly = [&](int nc) {
        SystemSpec system;
        for (int i = 0; i < nc; ++i)
            system.chiplets.push_back(Chiplet::fromArea(
                indexedName('c', i), DesignType::Logic, 7.0,
                50.0, tech_));
        return cost_.systemCost(system, pkg).assemblyUsd;
    };
    EXPECT_GT(assembly(4), assembly(2));
    EXPECT_NEAR(assembly(4) / assembly(2), 2.0, 1e-9);
}

TEST_F(CostTest, InterposerPackagesCostMoreThanRdl)
{
    SystemSpec system;
    for (int i = 0; i < 4; ++i)
        system.chiplets.push_back(Chiplet::fromArea(
            indexedName('c', i), DesignType::Logic, 7.0,
            80.0, tech_));

    PackageParams rdl;
    rdl.arch = PackagingArch::RdlFanout;
    PackageParams passive;
    passive.arch = PackagingArch::PassiveInterposer;
    PackageParams active;
    active.arch = PackagingArch::ActiveInterposer;

    const double c_rdl =
        cost_.systemCost(system, rdl).packageUsd;
    const double c_passive =
        cost_.systemCost(system, passive).packageUsd;
    const double c_active =
        cost_.systemCost(system, active).packageUsd;
    EXPECT_GT(c_passive, c_rdl);
    EXPECT_GT(c_active, c_passive);
}

TEST_F(CostTest, Fig15bTrends)
{
    // Die cost falls and assembly cost rises with Nc.
    EcoChip estimator;
    const CostBreakdown c3 = estimator.cost(
        testcases::ga102Split(estimator.tech(), 3));
    const CostBreakdown c8 = estimator.cost(
        testcases::ga102Split(estimator.tech(), 8));
    EXPECT_GT(c3.dieUsd, c8.dieUsd);
    EXPECT_LT(c3.assemblyUsd, c8.assemblyUsd);
}

TEST_F(CostTest, TotalsAddUp)
{
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    system.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 10.0, 50.0, tech_));
    const CostBreakdown b =
        cost_.systemCost(system, PackageParams());
    EXPECT_NEAR(b.totalUsd(),
                b.dieUsd + b.packageUsd + b.assemblyUsd + b.nreUsd,
                1e-12);
}

TEST_F(CostTest, NreCanBeExcluded)
{
    CostParams params;
    params.includeNre = false;
    CostModel no_nre(tech_, WaferModel(), params);
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    EXPECT_DOUBLE_EQ(
        no_nre.systemCost(system, PackageParams()).nreUsd, 0.0);
}

TEST_F(CostTest, Validation)
{
    CostParams bad;
    bad.volume = 0.0;
    EXPECT_THROW(CostModel(tech_, WaferModel(), bad),
                 ConfigError);
    SystemSpec empty;
    EXPECT_THROW(cost_.systemCost(empty, PackageParams()),
                 ConfigError);
}

} // namespace
} // namespace ecochip
