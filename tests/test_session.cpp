/**
 * @file
 * Tests for the AnalysisSession / ScenarioBuilder /
 * ScenarioRegistry API layer: golden equivalence against the
 * legacy direct-construction path, evaluation-cache coherence,
 * parallel Monte-Carlo determinism, and the unified result
 * serialization.
 */

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/testcases.h"
#include "io/result_writer.h"
#include "session/analysis_session.h"
#include "support/error.h"

namespace ecochip {
namespace {

EcoChipConfig
ga102Config()
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    config.operating = testcases::ga102Operating();
    return config;
}

// ------------------------------------------------ golden values

TEST(SessionGolden, EstimateBitIdenticalToLegacyPath)
{
    // Legacy: hand-wired estimator.
    EcoChip legacy(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        legacy.tech(), 7.0, 10.0, 14.0);
    const CarbonReport expected = legacy.estimate(system);

    // New: registry scenario through the session façade.
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const AnalysisResult result = session.estimate();

    ASSERT_TRUE(result.report.has_value());
    const CarbonReport &actual = *result.report;
    EXPECT_EQ(expected.mfgCo2Kg, actual.mfgCo2Kg);
    EXPECT_EQ(expected.designCo2Kg, actual.designCo2Kg);
    EXPECT_EQ(expected.nreCo2Kg, actual.nreCo2Kg);
    EXPECT_EQ(expected.hi.packageCo2Kg, actual.hi.packageCo2Kg);
    EXPECT_EQ(expected.hi.routingCo2Kg, actual.hi.routingCo2Kg);
    EXPECT_EQ(expected.operation.co2Kg, actual.operation.co2Kg);
    EXPECT_EQ(expected.embodiedCo2Kg(), actual.embodiedCo2Kg());
    EXPECT_EQ(expected.totalCo2Kg(), actual.totalCo2Kg());
    ASSERT_EQ(expected.chiplets.size(), actual.chiplets.size());
    for (std::size_t i = 0; i < expected.chiplets.size(); ++i) {
        EXPECT_EQ(expected.chiplets[i].name,
                  actual.chiplets[i].name);
        EXPECT_EQ(expected.chiplets[i].yield,
                  actual.chiplets[i].yield);
        EXPECT_EQ(expected.chiplets[i].mfgCo2Kg,
                  actual.chiplets[i].mfgCo2Kg);
        EXPECT_EQ(expected.chiplets[i].designCo2Kg,
                  actual.chiplets[i].designCo2Kg);
    }
}

TEST(SessionGolden, SweepBitIdenticalToLegacyExplorer)
{
    EcoChip legacy(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        legacy.tech(), 7.0, 10.0, 14.0);
    TechSpaceExplorer explorer(legacy);
    const auto expected =
        explorer.sweep(system, {7.0, 10.0, 14.0});

    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const AnalysisResult result =
        session.sweep({7.0, 10.0, 14.0});

    ASSERT_EQ(expected.size(), result.points.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].label(),
                  result.points[i].label());
        EXPECT_EQ(expected[i].report.embodiedCo2Kg(),
                  result.points[i].report.embodiedCo2Kg());
        EXPECT_EQ(expected[i].report.totalCo2Kg(),
                  result.points[i].report.totalCo2Kg());
    }
}

TEST(SessionGolden, CostMatchesLegacyPath)
{
    EcoChip legacy(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        legacy.tech(), 7.0, 10.0, 14.0);
    const CostBreakdown expected = legacy.cost(system);

    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const AnalysisResult result = session.cost();

    ASSERT_TRUE(result.cost.has_value());
    EXPECT_EQ(expected.dieUsd, result.cost->dieUsd);
    EXPECT_EQ(expected.packageUsd, result.cost->packageUsd);
    EXPECT_EQ(expected.assemblyUsd, result.cost->assemblyUsd);
    EXPECT_EQ(expected.totalUsd(), result.cost->totalUsd());
}

// ------------------------------------------------ Monte Carlo

TEST(SessionMonteCarlo, ParallelMatchesSerialForEqualSeeds)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();

    const AnalysisResult serial =
        session.monteCarlo(64, 7, Parallelism{1});
    const AnalysisResult parallel =
        session.monteCarlo(64, 7, Parallelism{4});

    ASSERT_TRUE(serial.uncertainty.has_value());
    ASSERT_TRUE(parallel.uncertainty.has_value());
    auto expect_same = [](const SampleStats &a,
                          const SampleStats &b) {
        EXPECT_EQ(a.mean(), b.mean());
        EXPECT_EQ(a.stddev(), b.stddev());
        EXPECT_EQ(a.min(), b.min());
        EXPECT_EQ(a.max(), b.max());
        EXPECT_EQ(a.percentile(50.0), b.percentile(50.0));
    };
    expect_same(serial.uncertainty->embodied,
                parallel.uncertainty->embodied);
    expect_same(serial.uncertainty->operational,
                parallel.uncertainty->operational);
    expect_same(serial.uncertainty->total,
                parallel.uncertainty->total);
}

TEST(SessionMonteCarlo, MoreThreadsThanTrialsIsFine)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const AnalysisResult result =
        session.monteCarlo(3, 11, Parallelism{16});
    EXPECT_EQ(result.uncertainty->embodied.count(), 3u);
}

TEST(SessionMonteCarlo, RejectsNonPositiveThreadCount)
{
    MonteCarloAnalyzer analyzer(ga102Config());
    TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);
    EXPECT_THROW(analyzer.run(system, 8, 42, Parallelism{0}),
                 ConfigError);
}

// ------------------------------------------------ registry

TEST(Registry, EveryBuiltinScenarioBuildsAndEstimates)
{
    const auto &registry = ScenarioRegistry::builtin();
    EXPECT_GE(registry.scenarios().size(), 8u);
    for (const std::string &name : registry.names()) {
        const AnalysisSession session =
            ScenarioBuilder().scenario(name).build();
        const AnalysisResult result = session.estimate();
        ASSERT_TRUE(result.report.has_value()) << name;
        EXPECT_GT(result.report->embodiedCo2Kg(), 0.0) << name;
        EXPECT_GT(result.report->totalCo2Kg(),
                  result.report->embodiedCo2Kg())
            << name << " should have operational carbon";
    }
}

TEST(Registry, ContainsNewWorkloadFamilies)
{
    const auto &registry = ScenarioRegistry::builtin();
    EXPECT_TRUE(registry.contains("ga102"));
    EXPECT_TRUE(registry.contains("a15"));
    EXPECT_TRUE(registry.contains("emr"));
    EXPECT_TRUE(registry.contains("server-4die"));
    EXPECT_TRUE(registry.contains("hbm-accel"));
    EXPECT_FALSE(registry.contains("nonexistent"));
}

TEST(Registry, UnknownScenarioListsAvailableNames)
{
    try {
        ScenarioBuilder().scenario("bogus").build();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("ga102"), std::string::npos);
    }
}

TEST(Registry, RejectsDuplicateAndAnonymousScenarios)
{
    ScenarioRegistry registry;
    registry.add({"x", "one",
                  [](const TechDb &) { return DesignBundle{}; }});
    EXPECT_THROW(
        registry.add({"x", "dup",
                      [](const TechDb &) {
                          return DesignBundle{};
                      }}),
        ConfigError);
    EXPECT_THROW(
        registry.add({"", "anon",
                      [](const TechDb &) {
                          return DesignBundle{};
                      }}),
        ConfigError);
}

TEST(Registry, ServerPartIsOperationDominated)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("server-4die").build();
    const CarbonReport report = *session.estimate().report;
    EXPECT_GT(report.operation.co2Kg, report.embodiedCo2Kg());
    // Twins reuse the compute design: exactly one compute die
    // carries design carbon.
    int designed = 0;
    for (const auto &c : report.chiplets)
        if (c.designCo2Kg > 0.0)
            ++designed;
    EXPECT_EQ(designed, 3); // compute0, io-hub, msc
}

TEST(Registry, HbmAcceleratorStacksShareFootprints)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("hbm-accel").build();
    EXPECT_EQ(session.system().chiplets.size(), 18u);
    const CarbonReport report = *session.estimate().report;
    // Stacked towers bond their tiers vertically.
    EXPECT_GT(report.hi.stackBondCo2Kg, 0.0);
    EXPECT_GT(report.hi.bondCount, 0.0);
}

// ------------------------------------------------ builder

TEST(Builder, RequiresExactlyOneSystemSource)
{
    EXPECT_THROW(ScenarioBuilder().build(), ConfigError);

    TechDb tech;
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);
    EXPECT_THROW(ScenarioBuilder()
                     .scenario("ga102")
                     .system(system)
                     .build(),
                 ConfigError);
}

TEST(Builder, OverridesApplyOnTopOfScenarioConfig)
{
    const AnalysisSession session =
        ScenarioBuilder()
            .scenario("ga102")
            .packaging(PackagingArch::PassiveInterposer)
            .includeMaskNre(true)
            .build();
    EXPECT_EQ(session.context().config().package.arch,
              PackagingArch::PassiveInterposer);
    EXPECT_TRUE(session.context().config().includeMaskNre);
    const CarbonReport report = *session.estimate().report;
    EXPECT_GT(report.nreCo2Kg, 0.0);
}

TEST(Builder, WithSystemSharesTheEvaluationContext)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const AnalysisSession sibling = session.withSystem(
        testcases::ga102Monolithic(session.context().tech()));
    EXPECT_EQ(&session.context(), &sibling.context());
}

// ------------------------------------------------ eval cache

TEST(EvalCache, RepeatedEstimatesAreBitIdentical)
{
    EcoChip estimator(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    const CarbonReport first = estimator.estimate(system);
    const CarbonReport second = estimator.estimate(system);
    EXPECT_EQ(first.mfgCo2Kg, second.mfgCo2Kg);
    EXPECT_EQ(first.embodiedCo2Kg(), second.embodiedCo2Kg());
    EXPECT_EQ(first.totalCo2Kg(), second.totalCo2Kg());
    EXPECT_GE(estimator.cache().report.size(), 1u);
}

TEST(EvalCache, SweepPopulatesSharedSubEvaluations)
{
    EcoChip estimator(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    TechSpaceExplorer explorer(estimator);
    explorer.sweep(system, {7.0, 10.0, 14.0});
    // 27 systems, but only 3 chiplets x 3 nodes of unique
    // (area, node) manufacturing points.
    EXPECT_EQ(estimator.cache().report.size(), 27u);
    EXPECT_EQ(estimator.cache().mfg.size(), 9u);
}

TEST(EvalCache, SetConfigInvalidatesMemoizedResults)
{
    EcoChipConfig config = ga102Config();
    EcoChip estimator(config);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);
    const CarbonReport before = estimator.estimate(system);

    config.includeWastage = false;
    estimator.setConfig(config);
    EXPECT_EQ(estimator.cache().report.size(), 0u);
    const CarbonReport after = estimator.estimate(system);
    EXPECT_LT(after.mfgCo2Kg, before.mfgCo2Kg);
}

TEST(EvalCache, CopiedEstimatorsShareMemoizedResults)
{
    EcoChip original(ga102Config());
    const SystemSpec system = testcases::ga102ThreeChiplet(
        original.tech(), 7.0, 10.0, 14.0);
    const CarbonReport expected = original.estimate(system);

    const EcoChip copy = original;
    EXPECT_GE(copy.cache().report.size(), 1u);
    EXPECT_EQ(copy.estimate(system).totalCo2Kg(),
              expected.totalCo2Kg());
}

// ------------------------------------------------ serialization

TEST(ResultWriter, JsonCarriesKindScenarioAndPayload)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();

    const json::Value estimate =
        resultToJson(session.estimate());
    EXPECT_EQ(estimate.at("kind").asString(), "estimate");
    EXPECT_EQ(estimate.at("scenario").asString(), "GA102-3c");
    EXPECT_TRUE(estimate.contains("report"));

    const json::Value sweep =
        resultToJson(session.sweep({7.0, 10.0}));
    EXPECT_EQ(sweep.at("kind").asString(), "sweep");
    EXPECT_EQ(sweep.at("sweep").asArray().size(), 8u);
    EXPECT_TRUE(sweep.contains("best_embodied"));

    const json::Value mc = resultToJson(
        session.monteCarlo(16, 3, Parallelism{2}));
    EXPECT_EQ(mc.at("kind").asString(), "monte_carlo");
    EXPECT_EQ(mc.at("uncertainty").at("trials").asNumber(),
              16.0);
    EXPECT_GT(mc.at("uncertainty")
                  .at("embodied")
                  .at("p95")
                  .asNumber(),
              mc.at("uncertainty")
                  .at("embodied")
                  .at("p5")
                  .asNumber());

    const json::Value cost = resultToJson(session.cost());
    EXPECT_EQ(cost.at("kind").asString(), "cost");
    EXPECT_GT(cost.at("cost").at("total_usd").asNumber(), 0.0);

    const json::Value sens = resultToJson(session.sensitivity());
    EXPECT_EQ(sens.at("kind").asString(), "sensitivity");
    EXPECT_GT(sens.at("sensitivity").at("rows").asArray().size(),
              0u);
}

TEST(ResultWriter, MarkdownRendersEveryKind)
{
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();

    const std::string estimate =
        resultMarkdown(session.estimate());
    EXPECT_NE(estimate.find("# ECO-CHIP estimate: GA102-3c"),
              std::string::npos);
    EXPECT_NE(estimate.find("**total (Ctot)**"),
              std::string::npos);

    const std::string sweep =
        resultMarkdown(session.sweep({7.0, 14.0}));
    EXPECT_NE(sweep.find("Technology-space sweep"),
              std::string::npos);
    EXPECT_NE(sweep.find("Lowest embodied CFP"),
              std::string::npos);

    const std::string mc = resultMarkdown(
        session.monteCarlo(16, 3, Parallelism{2}));
    EXPECT_NE(mc.find("Monte-Carlo uncertainty"),
              std::string::npos);

    const std::string cost = resultMarkdown(session.cost());
    EXPECT_NE(cost.find("Dollar cost"), std::string::npos);
}

TEST(ResultWriter, StackGroupRoundTripsThroughArchitectureJson)
{
    TechDb tech;
    const SystemSpec hbm = testcases::ga102Hbm(tech, 2, 4);
    const json::Value doc = systemToJson(hbm);
    const SystemSpec parsed = systemFromJson(doc, tech);
    ASSERT_EQ(parsed.chiplets.size(), hbm.chiplets.size());
    for (std::size_t i = 0; i < hbm.chiplets.size(); ++i)
        EXPECT_EQ(parsed.chiplets[i].stackGroup,
                  hbm.chiplets[i].stackGroup);
}

} // namespace
} // namespace ecochip
