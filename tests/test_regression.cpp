/**
 * @file
 * Calibration regression tests: pin the key measured values that
 * EXPERIMENTS.md reports, at 2% tolerance. If a calibration table
 * or model change moves these, EXPERIMENTS.md must be regenerated
 * -- the failure is the reminder.
 */

#include <gtest/gtest.h>

#include "core/ecochip.h"
#include "core/testcases.h"

namespace ecochip {
namespace {

/** Relative-tolerance helper. */
void
expectNearRel(double measured, double pinned, double rel = 0.02)
{
    EXPECT_NEAR(measured, pinned, rel * pinned);
}

class RegressionTest : public ::testing::Test
{
  protected:
    static EcoChip
    ga102Estimator()
    {
        EcoChipConfig config;
        config.operating = testcases::ga102Operating();
        return EcoChip(config);
    }
};

TEST_F(RegressionTest, Ga102MonolithPinnedValues)
{
    EcoChip estimator = ga102Estimator();
    const CarbonReport r = estimator.estimate(
        testcases::ga102Monolithic(estimator.tech()));
    expectNearRel(r.mfgCo2Kg, 46.94);
    expectNearRel(r.designCo2Kg, 13.53);
    expectNearRel(r.embodiedCo2Kg(), 60.47);
    expectNearRel(r.operation.co2Kg, 158.85);
    expectNearRel(r.totalCo2Kg(), 219.32);
}

TEST_F(RegressionTest, Ga102BestTuplePinnedValues)
{
    EcoChip estimator = ga102Estimator();
    const CarbonReport r = estimator.estimate(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 14.0,
                                     10.0));
    expectNearRel(r.mfgCo2Kg, 34.46, 0.03);
    expectNearRel(r.hi.totalCo2Kg(), 1.73, 0.05);
    expectNearRel(r.embodiedCo2Kg(), 49.53, 0.03);
    const double act = estimator.actEmbodiedCo2Kg(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 14.0,
                                     10.0));
    expectNearRel(act, 35.41, 0.03);
}

TEST_F(RegressionTest, Ga102EuseAnchor)
{
    EcoChip estimator = ga102Estimator();
    const CarbonReport r = estimator.estimate(
        testcases::ga102Monolithic(estimator.tech()));
    // ~228 kWh over two years (paper anchor).
    expectNearRel(r.operation.lifetimeEnergyKwh, 227.0, 0.03);
}

TEST_F(RegressionTest, A15EmbodiedShareAnchor)
{
    EcoChipConfig config;
    config.operating = testcases::a15Operating();
    EcoChip estimator(config);
    const CarbonReport r = estimator.estimate(
        testcases::a15Monolithic(estimator.tech()));
    // Apple-report validation: ~80% embodied.
    expectNearRel(r.embodiedCo2Kg() / r.totalCo2Kg(), 0.808,
                  0.02);
}

TEST_F(RegressionTest, YieldModelChoicePropagates)
{
    EcoChipConfig nb_config;
    nb_config.operating = testcases::ga102Operating();
    EcoChipConfig poisson_config = nb_config;
    poisson_config.yieldModel = YieldModelKind::Poisson;

    EcoChip nb(nb_config);
    EcoChip poisson(poisson_config);
    const SystemSpec mono =
        testcases::ga102Monolithic(nb.tech());
    // Poisson is more pessimistic for the big die -> more carbon.
    EXPECT_GT(poisson.estimate(mono).mfgCo2Kg,
              nb.estimate(mono).mfgCo2Kg);
}

TEST_F(RegressionTest, DesignAnchorPinned)
{
    // 24 CPU-hours per 700k gates; GA102 ~1.54e5 CPU-hours.
    TechDb tech;
    DesignModel design(tech);
    Chiplet ga102_digital = Chiplet::fromArea(
        "d", DesignType::Logic, 7.0, 500.0, tech);
    Chiplet mem = Chiplet::fromArea("m", DesignType::Memory, 7.0,
                                    80.0, tech);
    Chiplet ana = Chiplet::fromArea("a", DesignType::Analog, 7.0,
                                    48.0, tech);
    const double spr =
        design.chipletDesign(ga102_digital).sprHours +
        design.chipletDesign(mem).sprHours +
        design.chipletDesign(ana).sprHours;
    expectNearRel(spr, 1.81e5, 0.03);
}

TEST_F(RegressionTest, Fig9PinnedChi)
{
    // EMIB at Nc=2 and RDL at Nc=8 on the 500 mm^2 digital block
    // (values from EXPERIMENTS.md, g CO2).
    TechDb tech;
    ManufacturingModel mfg(tech);
    auto chi = [&](PackagingArch arch, int nc) {
        PackageParams pkg;
        pkg.arch = arch;
        return PackageModel(tech, mfg, pkg)
                   .evaluate(makeUniformSplit("d", 500.0, 7.0, nc,
                                              tech))
                   .totalCo2Kg() *
               1e3;
    };
    expectNearRel(chi(PackagingArch::SiliconBridge, 2), 779.0,
                  0.03);
    expectNearRel(chi(PackagingArch::RdlFanout, 8), 1194.0, 0.03);
}

} // namespace
} // namespace ecochip
