/**
 * @file
 * Unit tests for the design-CFP model (Eqs. 12-13).
 */

#include <gtest/gtest.h>

#include "design/design_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

class DesignTest : public ::testing::Test
{
  protected:
    Chiplet
    chipletWithGates(double mgates, double node_nm) const
    {
        Chiplet c;
        c.name = "c";
        c.type = DesignType::Logic;
        c.nodeNm = node_nm;
        c.transistorsMtr =
            mgates / DesignParams().gatesPerTransistor;
        return c;
    }

    TechDb tech_;
    DesignModel model_{tech_};
};

TEST_F(DesignTest, SprAnchorMatchesPaperMeasurement)
{
    // 700k gates in 7 nm take 24 CPU-hours for one SP&R run.
    const Chiplet c = chipletWithGates(0.7, 7.0);
    const DesignBreakdown b = model_.chipletDesign(c);
    EXPECT_NEAR(b.sprHours, 24.0, 1e-9);
}

TEST_F(DesignTest, Ga102ScaleSprHours)
{
    // The paper extrapolates ~1.5e5 CPU-hours of SP&R for the
    // GA102's ~4.5B logic gates.
    const Chiplet c = chipletWithGates(4500.0, 7.0);
    const DesignBreakdown b = model_.chipletDesign(c);
    EXPECT_NEAR(b.sprHours, 1.543e5, 2e3);
}

TEST_F(DesignTest, TotalHoursFollowEq13Structure)
{
    const Chiplet c = chipletWithGates(1.0, 7.0);
    const DesignParams p;
    const double spr = p.sprHoursPerMgate;
    const double iterative = spr * (1.0 + p.analyzeFraction) *
                             p.designIterations /
                             model_.edaProductivityFit(7.0);
    const double expected = (1.0 + p.verifMultiple) * iterative;
    EXPECT_NEAR(model_.chipletDesign(c).totalHours, expected,
                1e-6);
}

TEST_F(DesignTest, CarbonFollowsPdesAndIntensity)
{
    // Cdes,i = tdes * Pdes * Csrc: 10 W at 700 g/kWh.
    const Chiplet c = chipletWithGates(10.0, 7.0);
    const DesignBreakdown b = model_.chipletDesign(c);
    EXPECT_NEAR(b.co2Kg,
                b.totalHours * 10.0 * 1e-3 * 700.0 * 1e-3, 1e-9);
}

TEST_F(DesignTest, LegacyNodesDesignFaster)
{
    // EDA productivity improves on mature nodes (Fig. 7(b)).
    const Chiplet at7 = chipletWithGates(100.0, 7.0);
    const Chiplet at28 = chipletWithGates(100.0, 28.0);
    EXPECT_GT(model_.chipletDesign(at7).co2Kg,
              model_.chipletDesign(at28).co2Kg);
    EXPECT_GT(model_.singleIterationCo2Kg(at7),
              model_.singleIterationCo2Kg(at28));
}

TEST_F(DesignTest, EtaFitIsClampedUnitInterval)
{
    for (double node : {1.0, 3.0, 7.0, 28.0, 65.0, 90.0}) {
        const double eta = model_.edaProductivityFit(node);
        EXPECT_GT(eta, 0.0);
        EXPECT_LE(eta, 1.0);
    }
    // Regression tracks the table's trend.
    EXPECT_LT(model_.edaProductivityFit(5.0),
              model_.edaProductivityFit(40.0));
}

TEST_F(DesignTest, AmortizationDividesByChipletVolume)
{
    DesignParams params;
    params.chipletVolume = 1000.0;
    DesignModel model(tech_, params);
    const Chiplet c = chipletWithGates(10.0, 7.0);
    const DesignBreakdown b = model.chipletDesign(c);
    EXPECT_NEAR(b.amortizedCo2Kg, b.co2Kg / 1000.0, 1e-12);
}

TEST_F(DesignTest, ReusedChipletsAreFree)
{
    SystemSpec system;
    Chiplet fresh = chipletWithGates(100.0, 7.0);
    fresh.name = "fresh";
    Chiplet reused = fresh;
    reused.name = "reused";
    reused.reused = true;

    system.chiplets = {fresh};
    const double fresh_only = model_.systemDesignCo2Kg(system);

    system.chiplets = {fresh, reused};
    EXPECT_NEAR(model_.systemDesignCo2Kg(system), fresh_only,
                1e-12);

    system.chiplets = {reused};
    EXPECT_DOUBLE_EQ(model_.systemDesignCo2Kg(system), 0.0);
}

TEST_F(DesignTest, CommIpChargedPerSystem)
{
    SystemSpec system;
    system.chiplets = {chipletWithGates(100.0, 7.0)};
    const double without = model_.systemDesignCo2Kg(system);
    const double with =
        model_.systemDesignCo2Kg(system, 1.2, 65.0);
    EXPECT_GT(with, without);
    // Router IP is tiny: the comm term must be a small fraction.
    EXPECT_LT(with - without, 0.05 * without);
}

TEST_F(DesignTest, MoreIterationsMoreCarbon)
{
    DesignParams few;
    few.designIterations = 10;
    DesignParams many;
    many.designIterations = 100;
    const Chiplet c = chipletWithGates(50.0, 7.0);
    EXPECT_NEAR(DesignModel(tech_, many).chipletDesign(c).co2Kg,
                10.0 *
                    DesignModel(tech_, few).chipletDesign(c).co2Kg,
                1e-6);
}

TEST_F(DesignTest, ParameterValidation)
{
    DesignParams bad;
    bad.pdesW = 0.0;
    EXPECT_THROW(DesignModel(tech_, bad), ConfigError);
    bad = DesignParams();
    bad.designIterations = 0;
    EXPECT_THROW(DesignModel(tech_, bad), ConfigError);
    bad = DesignParams();
    bad.chipletVolume = 0.0;
    EXPECT_THROW(DesignModel(tech_, bad), ConfigError);
    bad = DesignParams();
    bad.gatesPerTransistor = -0.1;
    EXPECT_THROW(DesignModel(tech_, bad), ConfigError);
}

} // namespace
} // namespace ecochip
