/**
 * @file
 * Unit tests for the JSON parser and serializer.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "json/json.h"
#include "support/error.h"

namespace ecochip::json {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_EQ(parse("true").asBoolean(), true);
    EXPECT_EQ(parse("false").asBoolean(), false);
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-3.25").asNumber(), -3.25);
    EXPECT_DOUBLE_EQ(parse("6.02e23").asNumber(), 6.02e23);
    EXPECT_DOUBLE_EQ(parse("1E-3").asNumber(), 1e-3);
    EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NestedStructure)
{
    const Value doc = parse(R"({
        "name": "soc",
        "chiplets": [
            {"name": "a", "area": 10.5},
            {"name": "b", "area": 20.0}
        ],
        "flags": {"mono": false}
    })");
    EXPECT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("name").asString(), "soc");
    EXPECT_EQ(doc.at("chiplets").size(), 2u);
    EXPECT_DOUBLE_EQ(
        doc.at("chiplets")[1].at("area").asNumber(), 20.0);
    EXPECT_FALSE(doc.at("flags").at("mono").asBoolean());
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parse(R"("a\"b")").asString(), "a\"b");
    EXPECT_EQ(parse(R"("a\\b")").asString(), "a\\b");
    EXPECT_EQ(parse(R"("a\nb\tc")").asString(), "a\nb\tc");
    EXPECT_EQ(parse(R"("a\/b")").asString(), "a/b");
}

TEST(JsonParse, UnicodeEscapes)
{
    EXPECT_EQ(parse(R"("A")").asString(), "A");
    // U+00E9 (e-acute) -> 2-byte UTF-8.
    EXPECT_EQ(parse(R"("é")").asString(), "\xc3\xa9");
    // U+20AC (euro) -> 3-byte UTF-8.
    EXPECT_EQ(parse(R"("€")").asString(), "\xe2\x82\xac");
}

TEST(JsonParse, ToleratesLineComments)
{
    const Value doc = parse(
        "{\n  // carbon config\n  \"x\": 1 // trailing\n}");
    EXPECT_DOUBLE_EQ(doc.at("x").asNumber(), 1.0);
}

TEST(JsonParse, EmptyContainers)
{
    EXPECT_EQ(parse("[]").size(), 0u);
    EXPECT_EQ(parse("{}").size(), 0u);
    EXPECT_EQ(parse("[ ]").size(), 0u);
}

TEST(JsonParse, ErrorsCarryLineAndColumn)
{
    try {
        parse("{\n  \"a\": 1,\n  \"b\": }\n");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    }
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_THROW(parse(""), ConfigError);
    EXPECT_THROW(parse("{"), ConfigError);
    EXPECT_THROW(parse("[1, 2"), ConfigError);
    EXPECT_THROW(parse("tru"), ConfigError);
    EXPECT_THROW(parse("\"unterminated"), ConfigError);
    EXPECT_THROW(parse("01x"), ConfigError);
    EXPECT_THROW(parse("1.2.3"), ConfigError);
    EXPECT_THROW(parse("{\"a\" 1}"), ConfigError);
    EXPECT_THROW(parse("{} extra"), ConfigError);
    EXPECT_THROW(parse("1.-"), ConfigError);
    EXPECT_THROW(parse("[1,]"), ConfigError);
}

TEST(JsonParse, RejectsDuplicateKeys)
{
    EXPECT_THROW(parse(R"({"a": 1, "a": 2})"), ConfigError);
}

TEST(JsonValue, TypeMismatchThrows)
{
    const Value v = parse("{\"n\": 5}");
    EXPECT_THROW(v.at("n").asString(), ConfigError);
    EXPECT_THROW(v.at("n").asArray(), ConfigError);
    EXPECT_THROW(v.at("missing"), ConfigError);
    EXPECT_THROW(v.asNumber(), ConfigError);
}

TEST(JsonValue, AsIntegerValidatesIntegrality)
{
    EXPECT_EQ(parse("7").asInteger(), 7);
    EXPECT_EQ(parse("-3").asInteger(), -3);
    EXPECT_THROW(parse("7.5").asInteger(), ConfigError);
}

TEST(JsonValue, OptionalLookups)
{
    const Value v = parse(R"({"x": 2.0, "s": "hey", "b": true})");
    EXPECT_DOUBLE_EQ(v.numberOr("x", 9.0), 2.0);
    EXPECT_DOUBLE_EQ(v.numberOr("y", 9.0), 9.0);
    EXPECT_EQ(v.stringOr("s", "d"), "hey");
    EXPECT_EQ(v.stringOr("t", "d"), "d");
    EXPECT_TRUE(v.booleanOr("b", false));
    EXPECT_TRUE(v.booleanOr("c", true));
}

TEST(JsonValue, SetOverwritesAndPreservesOrder)
{
    Value obj = Value::makeObject();
    obj.set("z", 1);
    obj.set("a", 2);
    obj.set("z", 3);
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.members()[0].first, "z");
    EXPECT_DOUBLE_EQ(obj.at("z").asNumber(), 3.0);
}

TEST(JsonDump, RoundTripsStructures)
{
    const std::string text =
        R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
    const Value doc = parse(text);
    EXPECT_EQ(parse(doc.dump()), doc);
    EXPECT_EQ(parse(doc.dump(true)), doc);
}

TEST(JsonDump, EscapesSpecialCharacters)
{
    const Value v(std::string("a\"b\\c\nd"));
    EXPECT_EQ(parse(v.dump()), v);
}

TEST(JsonDump, IntegersPrintWithoutFraction)
{
    EXPECT_EQ(Value(42.0).dump(), "42");
    EXPECT_EQ(Value(-7).dump(), "-7");
}

TEST(JsonDump, PrettyPrintIndents)
{
    Value obj = Value::makeObject();
    obj.set("k", 1);
    EXPECT_EQ(obj.dump(true), "{\n    \"k\": 1\n}");
}

TEST(JsonFile, WriteAndParseFile)
{
    const std::string path =
        ::testing::TempDir() + "/ecochip_json_test.json";
    Value obj = Value::makeObject();
    obj.set("answer", 42);
    writeFile(obj, path);
    EXPECT_EQ(parseFile(path), obj);
    std::remove(path.c_str());
}

TEST(JsonFile, MissingFileThrows)
{
    EXPECT_THROW(parseFile("/nonexistent/nope.json"), ConfigError);
}

TEST(JsonValue, Equality)
{
    EXPECT_EQ(parse("[1,2]"), parse("[1, 2]"));
    EXPECT_FALSE(parse("[1,2]") == parse("[2,1]"));
    EXPECT_FALSE(Value(1.0) == Value("1"));
}

} // namespace
} // namespace ecochip::json
