/**
 * @file
 * Unit tests for the JSON parser and serializer, the streaming
 * writer (`json/stream_writer.h`), and the forward-only on-demand
 * scanner (`json/ondemand.h`).
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "json/json.h"
#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "support/error.h"

namespace ecochip::json {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_EQ(parse("true").asBoolean(), true);
    EXPECT_EQ(parse("false").asBoolean(), false);
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-3.25").asNumber(), -3.25);
    EXPECT_DOUBLE_EQ(parse("6.02e23").asNumber(), 6.02e23);
    EXPECT_DOUBLE_EQ(parse("1E-3").asNumber(), 1e-3);
    EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NestedStructure)
{
    const Value doc = parse(R"({
        "name": "soc",
        "chiplets": [
            {"name": "a", "area": 10.5},
            {"name": "b", "area": 20.0}
        ],
        "flags": {"mono": false}
    })");
    EXPECT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("name").asString(), "soc");
    EXPECT_EQ(doc.at("chiplets").size(), 2u);
    EXPECT_DOUBLE_EQ(
        doc.at("chiplets")[1].at("area").asNumber(), 20.0);
    EXPECT_FALSE(doc.at("flags").at("mono").asBoolean());
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parse(R"("a\"b")").asString(), "a\"b");
    EXPECT_EQ(parse(R"("a\\b")").asString(), "a\\b");
    EXPECT_EQ(parse(R"("a\nb\tc")").asString(), "a\nb\tc");
    EXPECT_EQ(parse(R"("a\/b")").asString(), "a/b");
}

TEST(JsonParse, UnicodeEscapes)
{
    EXPECT_EQ(parse(R"("A")").asString(), "A");
    // U+00E9 (e-acute) -> 2-byte UTF-8.
    EXPECT_EQ(parse(R"("é")").asString(), "\xc3\xa9");
    // U+20AC (euro) -> 3-byte UTF-8.
    EXPECT_EQ(parse(R"("€")").asString(), "\xe2\x82\xac");
}

TEST(JsonParse, ToleratesLineComments)
{
    const Value doc = parse(
        "{\n  // carbon config\n  \"x\": 1 // trailing\n}");
    EXPECT_DOUBLE_EQ(doc.at("x").asNumber(), 1.0);
}

TEST(JsonParse, EmptyContainers)
{
    EXPECT_EQ(parse("[]").size(), 0u);
    EXPECT_EQ(parse("{}").size(), 0u);
    EXPECT_EQ(parse("[ ]").size(), 0u);
}

TEST(JsonParse, ErrorsCarryLineAndColumn)
{
    try {
        parse("{\n  \"a\": 1,\n  \"b\": }\n");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    }
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_THROW(parse(""), ConfigError);
    EXPECT_THROW(parse("{"), ConfigError);
    EXPECT_THROW(parse("[1, 2"), ConfigError);
    EXPECT_THROW(parse("tru"), ConfigError);
    EXPECT_THROW(parse("\"unterminated"), ConfigError);
    EXPECT_THROW(parse("01x"), ConfigError);
    EXPECT_THROW(parse("1.2.3"), ConfigError);
    EXPECT_THROW(parse("{\"a\" 1}"), ConfigError);
    EXPECT_THROW(parse("{} extra"), ConfigError);
    EXPECT_THROW(parse("1.-"), ConfigError);
    EXPECT_THROW(parse("[1,]"), ConfigError);
}

TEST(JsonParse, RejectsDuplicateKeys)
{
    EXPECT_THROW(parse(R"({"a": 1, "a": 2})"), ConfigError);
}

TEST(JsonValue, TypeMismatchThrows)
{
    const Value v = parse("{\"n\": 5}");
    EXPECT_THROW(v.at("n").asString(), ConfigError);
    EXPECT_THROW(v.at("n").asArray(), ConfigError);
    EXPECT_THROW(v.at("missing"), ConfigError);
    EXPECT_THROW(v.asNumber(), ConfigError);
}

TEST(JsonValue, AsIntegerValidatesIntegrality)
{
    EXPECT_EQ(parse("7").asInteger(), 7);
    EXPECT_EQ(parse("-3").asInteger(), -3);
    EXPECT_THROW(parse("7.5").asInteger(), ConfigError);
}

TEST(JsonValue, OptionalLookups)
{
    const Value v = parse(R"({"x": 2.0, "s": "hey", "b": true})");
    EXPECT_DOUBLE_EQ(v.numberOr("x", 9.0), 2.0);
    EXPECT_DOUBLE_EQ(v.numberOr("y", 9.0), 9.0);
    EXPECT_EQ(v.stringOr("s", "d"), "hey");
    EXPECT_EQ(v.stringOr("t", "d"), "d");
    EXPECT_TRUE(v.booleanOr("b", false));
    EXPECT_TRUE(v.booleanOr("c", true));
}

TEST(JsonValue, SetOverwritesAndPreservesOrder)
{
    Value obj = Value::makeObject();
    obj.set("z", 1);
    obj.set("a", 2);
    obj.set("z", 3);
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.members()[0].first, "z");
    EXPECT_DOUBLE_EQ(obj.at("z").asNumber(), 3.0);
}

TEST(JsonDump, RoundTripsStructures)
{
    const std::string text =
        R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
    const Value doc = parse(text);
    EXPECT_EQ(parse(doc.dump()), doc);
    EXPECT_EQ(parse(doc.dump(true)), doc);
}

TEST(JsonDump, EscapesSpecialCharacters)
{
    const Value v(std::string("a\"b\\c\nd"));
    EXPECT_EQ(parse(v.dump()), v);
}

TEST(JsonDump, IntegersPrintWithoutFraction)
{
    EXPECT_EQ(Value(42.0).dump(), "42");
    EXPECT_EQ(Value(-7).dump(), "-7");
}

TEST(JsonDump, PrettyPrintIndents)
{
    Value obj = Value::makeObject();
    obj.set("k", 1);
    EXPECT_EQ(obj.dump(true), "{\n    \"k\": 1\n}");
}

TEST(JsonFile, WriteAndParseFile)
{
    const std::string path =
        ::testing::TempDir() + "/ecochip_json_test.json";
    Value obj = Value::makeObject();
    obj.set("answer", 42);
    writeFile(obj, path);
    EXPECT_EQ(parseFile(path), obj);
    std::remove(path.c_str());
}

TEST(JsonFile, MissingFileThrows)
{
    EXPECT_THROW(parseFile("/nonexistent/nope.json"), ConfigError);
}

TEST(JsonValue, Equality)
{
    EXPECT_EQ(parse("[1,2]"), parse("[1, 2]"));
    EXPECT_FALSE(parse("[1,2]") == parse("[2,1]"));
    EXPECT_FALSE(Value(1.0) == Value("1"));
}

// ---------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------

TEST(StreamWriter, MatchesDumpForScalars)
{
    StreamWriter writer;
    writer.null();
    EXPECT_EQ(writer.take(), "null");
    writer.boolean(true);
    EXPECT_EQ(writer.take(), "true");
    writer.number(42.0);
    EXPECT_EQ(writer.take(), "42");
    writer.string("a\"b");
    EXPECT_EQ(writer.take(), R"("a\"b")");
}

TEST(StreamWriter, MatchesDumpForContainers)
{
    const Value doc = parse(
        R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":[],"f":{}})");
    StreamWriter compact;
    appendValue(compact, doc);
    EXPECT_EQ(compact.take(), doc.dump(false));
    StreamWriter pretty(true);
    appendValue(pretty, doc);
    EXPECT_EQ(pretty.take(), doc.dump(true));
}

TEST(StreamWriter, EmptyContainersMatchDump)
{
    StreamWriter pretty(true);
    pretty.beginObject();
    pretty.key("a");
    pretty.beginArray();
    pretty.endArray();
    pretty.key("b");
    pretty.beginObject();
    pretty.endObject();
    pretty.endObject();
    EXPECT_EQ(pretty.take(),
              parse(R"({"a":[],"b":{}})").dump(true));
}

TEST(StreamWriter, TakeResetsForReuse)
{
    StreamWriter writer;
    writer.beginArray();
    writer.number(1);
    writer.endArray();
    EXPECT_EQ(writer.take(), "[1]");
    writer.beginObject();
    writer.key("k");
    writer.string("v");
    writer.endObject();
    EXPECT_EQ(writer.take(), R"({"k":"v"})");
}

TEST(StreamWriter, RawSplicesVerbatim)
{
    StreamWriter writer;
    writer.beginObject();
    writer.key("payload");
    writer.raw(R"([1,{"x":true}])");
    writer.endObject();
    EXPECT_EQ(writer.take(), R"({"payload":[1,{"x":true}]})");
}

TEST(StreamWriter, ScopeViolationsThrow)
{
    {
        StreamWriter writer;
        EXPECT_THROW(writer.endObject(), ModelError);
    }
    {
        StreamWriter writer;
        writer.beginArray();
        EXPECT_THROW(writer.key("k"), ModelError);
    }
    {
        StreamWriter writer;
        writer.beginObject();
        EXPECT_THROW(writer.number(1), ModelError);
    }
    {
        StreamWriter writer;
        writer.beginArray();
        EXPECT_THROW(writer.take(), ModelError);
    }
}

// The wire-path escaping contract: `json::dump` and the streaming
// writer agree byte-for-byte on every control character below
// 0x20 -- golden spellings, one per character.
TEST(StreamWriter, ControlCharacterEscapesMatchDumpGolden)
{
    const char *golden[32] = {
        "\\u0000", "\\u0001", "\\u0002", "\\u0003", "\\u0004",
        "\\u0005", "\\u0006", "\\u0007", "\\b",     "\\t",
        "\\n",     "\\u000b", "\\f",     "\\r",     "\\u000e",
        "\\u000f", "\\u0010", "\\u0011", "\\u0012", "\\u0013",
        "\\u0014", "\\u0015", "\\u0016", "\\u0017", "\\u0018",
        "\\u0019", "\\u001a", "\\u001b", "\\u001c", "\\u001d",
        "\\u001e", "\\u001f"};
    for (int c = 0; c < 32; ++c) {
        const std::string raw(1, static_cast<char>(c));
        const std::string expected =
            "\"" + std::string(golden[c]) + "\"";
        EXPECT_EQ(Value(raw).dump(false), expected)
            << "dump of control char " << c;
        StreamWriter writer;
        writer.string(raw);
        EXPECT_EQ(writer.take(), expected)
            << "writer output for control char " << c;
        // And the escape parses back to the original byte --
        // through both parsers.
        EXPECT_EQ(parse(expected).asString(), raw);
        ondemand::Scanner scanner(expected);
        EXPECT_EQ(scanner.string(), raw);
    }
}

// ---------------------------------------------------------------
// On-demand scanner
// ---------------------------------------------------------------

TEST(Ondemand, ScansScalars)
{
    {
        ondemand::Scanner s("true");
        EXPECT_TRUE(s.boolean());
    }
    {
        ondemand::Scanner s("-3.25");
        EXPECT_DOUBLE_EQ(s.number(), -3.25);
    }
    {
        ondemand::Scanner s(R"("a\nb")");
        EXPECT_EQ(s.string(), "a\nb");
    }
    {
        ondemand::Scanner s(" null ");
        s.null();
        s.expectEnd();
    }
}

TEST(Ondemand, IteratesObjectsAndArrays)
{
    ondemand::Scanner s(
        R"({"name":"soc","areas":[10.5,20],"ok":true})");
    s.beginObject();
    std::string key;
    ASSERT_TRUE(s.nextMember(key));
    EXPECT_EQ(key, "name");
    EXPECT_EQ(s.string(), "soc");
    ASSERT_TRUE(s.nextMember(key));
    EXPECT_EQ(key, "areas");
    s.beginArray();
    ASSERT_TRUE(s.nextElement());
    EXPECT_DOUBLE_EQ(s.number(), 10.5);
    ASSERT_TRUE(s.nextElement());
    EXPECT_DOUBLE_EQ(s.number(), 20.0);
    EXPECT_FALSE(s.nextElement());
    ASSERT_TRUE(s.nextMember(key));
    EXPECT_EQ(key, "ok");
    EXPECT_TRUE(s.boolean());
    EXPECT_FALSE(s.nextMember(key));
    s.expectEnd();
}

TEST(Ondemand, RawValueYieldsSpans)
{
    ondemand::Scanner s(R"([ {"a": 1} , [2, 3] , "x" ])");
    s.beginArray();
    ASSERT_TRUE(s.nextElement());
    EXPECT_EQ(s.rawValue(), R"({"a": 1})");
    ASSERT_TRUE(s.nextElement());
    EXPECT_EQ(s.rawValue(), "[2, 3]");
    ASSERT_TRUE(s.nextElement());
    EXPECT_EQ(s.rawValue(), "\"x\"");
    EXPECT_FALSE(s.nextElement());
    s.expectEnd();
}

TEST(Ondemand, FindMemberSeeksWithoutMaterializing)
{
    const std::string doc =
        R"({"request":{"kind":"estimate"},"ok":false,"error":"boom"})";
    const auto request = ondemand::findMember(doc, "request");
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(*request, R"({"kind":"estimate"})");
    EXPECT_FALSE(
        ondemand::findMember(doc, "missing").has_value());
    EXPECT_FALSE(ondemand::booleanField(doc, "ok", true));
    EXPECT_TRUE(ondemand::booleanField(doc, "absent", true));
    // Type mismatch carries the same message as booleanOr.
    try {
        ondemand::booleanField(doc, "error", false);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("expected boolean, got string"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Ondemand, ReserializeMatchesParseDump)
{
    const std::string text =
        "{\n  // comment\n  \"a\": [1, 2.50, \"x\\u0041\"],\n"
        "  \"b\": {\"c\": true, \"d\": null}\n}";
    const Value doc = parse(text);
    EXPECT_EQ(ondemand::reserialize(text, false),
              doc.dump(false));
    EXPECT_EQ(ondemand::reserialize(text, true), doc.dump(true));
}

TEST(Ondemand, RejectsDuplicateKeysLikeDom)
{
    EXPECT_THROW(ondemand::validate(R"({"a":1,"a":2})"),
                 ConfigError);
    EXPECT_THROW(parse(R"({"a":1,"a":2})"), ConfigError);
}

// Malformed-input matrix: every case rejects with a
// position-bearing error from BOTH parsers, and the scanner
// never reads past the buffer (the ASan CI job runs this file).
TEST(Ondemand, MalformedInputMatrixRejectsWithPositions)
{
    const char *cases[] = {
        "",                     // empty document
        "   ",                  // only whitespace
        "// comment only",      // comment, no value
        "{",                    // truncated object
        "[1, 2",                // truncated array
        "{\"a\": 1",            // object cut mid-member
        "{\"a\"",               // object cut before colon
        "{\"a\": }",            // missing value
        "[1, ]",                // trailing comma
        "{\"a\": 1,}",          // trailing comma in object
        "[1} ",                 // mismatched brackets
        "{\"a\": 1]",           // mismatched brackets
        "\"unterminated",       // unterminated string
        "\"bad \\x escape\"",   // unknown escape
        "\"\\u12\"",            // short \u escape
        "\"\\u12zz\"",          // non-hex \u escape
        "\"raw \x01 control\"", // raw control char in string
        "tru",                  // truncated keyword
        "nul",                  // truncated keyword
        "+1",                   // leading plus
        "1.",                   // digitless fraction
        ".5",                   // digitless integer part
        "1e",                   // digitless exponent
        "1e+",                  // digitless signed exponent
        "1.2.3",                // overlong number
        "0x10",                 // hex is not JSON
        "1e999",                // out-of-range magnitude
        "-1e999",               // out-of-range magnitude
        "{} extra",             // trailing garbage
        "[1] [2]",              // two documents
    };
    for (const char *text : cases) {
        // DOM parser rejects...
        std::string dom_error;
        try {
            parse(text);
        } catch (const ConfigError &e) {
            dom_error = e.what();
        }
        ASSERT_FALSE(dom_error.empty())
            << "DOM accepted: " << text;
        // ...the scanner rejects with the identical message...
        std::string scan_error;
        try {
            ondemand::validate(text);
        } catch (const ConfigError &e) {
            scan_error = e.what();
        }
        ASSERT_FALSE(scan_error.empty())
            << "scanner accepted: " << text;
        EXPECT_EQ(scan_error, dom_error) << "input: " << text;
        // ...and the message carries a position.
        EXPECT_NE(scan_error.find("line "), std::string::npos)
            << scan_error;
        EXPECT_NE(scan_error.find("column "), std::string::npos)
            << scan_error;
    }
}

TEST(Ondemand, NeverReadsPastAnUnterminatedBuffer)
{
    // A document sliced at every prefix length must either parse
    // (never happens for proper prefixes of this doc) or throw --
    // ASan verifies no read walks off the end of the heap
    // allocation backing the string_view.
    const std::string doc =
        R"({"a": [1, 2.5e3, "x\u0041\n"], "b": {"c": true}})";
    for (std::size_t len = 0; len < doc.size(); ++len) {
        const std::string prefix = doc.substr(0, len);
        EXPECT_THROW(ondemand::validate(prefix), ConfigError)
            << "prefix length " << len;
    }
    ondemand::validate(doc);
}

TEST(Ondemand, NumberRangeChecksMatchDom)
{
    // Overflow: both parsers reject positionally.
    EXPECT_THROW(parse("1e999"), ConfigError);
    EXPECT_THROW(ondemand::validate("1e999"), ConfigError);
    // Quiet underflow: both parsers accept (denormal or zero).
    EXPECT_DOUBLE_EQ(parse("1e-999").asNumber(), 0.0);
    ondemand::Scanner s("1e-999");
    EXPECT_DOUBLE_EQ(s.number(), 0.0);
}

} // namespace
} // namespace ecochip::json
