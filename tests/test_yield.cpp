/**
 * @file
 * Unit and property tests for the yield models (Eq. 4, bond-array
 * and compound yields).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "support/error.h"
#include "yield/yield_model.h"

namespace ecochip {
namespace {

TEST(NegativeBinomialYield, HandComputedValue)
{
    // Y = (1 + 1.0 * 0.3 / 3)^-3 = 1.1^-3.
    EXPECT_NEAR(negativeBinomialYield(1.0, 0.3, 3.0),
                std::pow(1.1, -3.0), 1e-12);
}

TEST(NegativeBinomialYield, PerfectYieldLimits)
{
    EXPECT_DOUBLE_EQ(negativeBinomialYield(0.0, 0.3, 3.0), 1.0);
    EXPECT_DOUBLE_EQ(negativeBinomialYield(5.0, 0.0, 3.0), 1.0);
}

TEST(NegativeBinomialYield, ApproachesPoissonForLargeAlpha)
{
    // As alpha -> inf the model converges to exp(-A*D0).
    const double a = 2.0, d0 = 0.2;
    EXPECT_NEAR(negativeBinomialYield(a, d0, 1e7),
                std::exp(-a * d0), 1e-6);
}

TEST(NegativeBinomialYield, InputValidation)
{
    EXPECT_THROW(negativeBinomialYield(-1.0, 0.1, 3.0),
                 ConfigError);
    EXPECT_THROW(negativeBinomialYield(1.0, -0.1, 3.0),
                 ConfigError);
    EXPECT_THROW(negativeBinomialYield(1.0, 0.1, 0.0),
                 ConfigError);
}

/** Yield is strictly decreasing in area and defect density. */
class YieldMonotonicityTest
    : public ::testing::TestWithParam<double>
{};

TEST_P(YieldMonotonicityTest, DecreasesWithArea)
{
    const double d0 = GetParam();
    double prev = 1.1;
    for (double area : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        const double y = negativeBinomialYield(area, d0, 3.0);
        EXPECT_GT(y, 0.0);
        EXPECT_LT(y, prev);
        prev = y;
    }
}

TEST_P(YieldMonotonicityTest, DecreasesWithDefectDensity)
{
    const double area = GetParam() * 20.0; // reuse param as area
    const double lo = negativeBinomialYield(area, 0.07, 3.0);
    const double hi = negativeBinomialYield(area, 0.30, 3.0);
    EXPECT_GT(lo, hi);
}

INSTANTIATE_TEST_SUITE_P(DefectDensities, YieldMonotonicityTest,
                         ::testing::Values(0.07, 0.12, 0.20,
                                           0.30));

TEST(BondArrayYield, MatchesExponential)
{
    EXPECT_NEAR(bondArrayYield(1e6, 1e-7), std::exp(-0.1), 1e-12);
    EXPECT_DOUBLE_EQ(bondArrayYield(0.0, 1e-7), 1.0);
    EXPECT_DOUBLE_EQ(bondArrayYield(12345.0, 0.0), 1.0);
}

TEST(BondArrayYield, InputValidation)
{
    EXPECT_THROW(bondArrayYield(-1.0, 1e-7), ConfigError);
    EXPECT_THROW(bondArrayYield(1.0, 1.0), ConfigError);
    EXPECT_THROW(bondArrayYield(1.0, -0.1), ConfigError);
}

TEST(CompoundYield, MultipliesComponents)
{
    EXPECT_DOUBLE_EQ(compoundYield({}), 1.0);
    EXPECT_DOUBLE_EQ(compoundYield({0.5}), 0.5);
    EXPECT_NEAR(compoundYield({0.9, 0.8, 0.5}), 0.36, 1e-12);
}

TEST(CompoundYield, RejectsOutOfRangeComponents)
{
    EXPECT_THROW(compoundYield({0.9, 0.0}), ConfigError);
    EXPECT_THROW(compoundYield({1.1}), ConfigError);
    EXPECT_THROW(compoundYield({-0.5}), ConfigError);
}

TEST(YieldModel, UsesTechDbDefectDensity)
{
    TechDb tech;
    YieldModel model(tech);
    // 100 mm^2 = 1 cm^2 at 7 nm (D0 = 0.2).
    EXPECT_NEAR(model.dieYield(100.0, 7.0),
                negativeBinomialYield(1.0, 0.2, 3.0), 1e-12);
}

TEST(YieldModel, LegacyNodesYieldBetterAtSameArea)
{
    TechDb tech;
    YieldModel model(tech);
    EXPECT_GT(model.dieYield(200.0, 65.0),
              model.dieYield(200.0, 7.0));
}

TEST(YieldModel, PackagingLayerYieldOrdering)
{
    // RDL (coarse features) yields best; fine bridge layers
    // worst -- "EMIB yields lower than RDL" (Sec. II-C).
    TechDb tech;
    YieldModel model(tech);
    const double area = 400.0, node = 65.0;
    EXPECT_GT(model.rdlYield(area, node),
              model.interposerYield(area, node));
    EXPECT_GT(model.interposerYield(area, node),
              model.bridgeYield(area, node));
}

} // namespace
} // namespace ecochip
