/**
 * @file
 * Cross-module property tests: invariants that must hold over
 * broad parameter sweeps, exercised with parameterized gtest.
 */

#include <gtest/gtest.h>

#include "core/disaggregate.h"
#include "core/ecochip.h"
#include "core/testcases.h"

namespace ecochip {
namespace {

/** (node_nm, area_mm2) grid for per-die invariants. */
class DieGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
  protected:
    TechDb tech_;
    ManufacturingModel mfg_{tech_};
};

TEST_P(DieGridTest, YieldInUnitInterval)
{
    const auto [node, area] = GetParam();
    const MfgBreakdown b = mfg_.dieMfg(area, node);
    EXPECT_GT(b.yield, 0.0);
    EXPECT_LE(b.yield, 1.0);
}

TEST_P(DieGridTest, CarbonHasMaterialFloor)
{
    // Even a perfect-yield die cannot emit less than its material
    // and gas footprint.
    const auto [node, area] = GetParam();
    const MfgBreakdown b = mfg_.dieMfg(area, node);
    const double floor_kg =
        (tech_.cgasKgPerCm2(node) +
         tech_.cmaterialKgPerCm2(node)) *
        area * 0.01;
    EXPECT_GT(b.dieCo2Kg, floor_kg);
}

TEST_P(DieGridTest, YieldedCfpaExceedsGross)
{
    const auto [node, area] = GetParam();
    const MfgBreakdown b = mfg_.dieMfg(area, node);
    EXPECT_GE(b.cfpaKgPerCm2,
              mfg_.grossCfpaKgPerCm2(node) - 1e-12);
}

TEST_P(DieGridTest, WastedAreaPositiveAndBounded)
{
    const auto [node, area] = GetParam();
    const MfgBreakdown b = mfg_.dieMfg(area, node);
    EXPECT_GT(b.wastedAreaMm2, 0.0);
    // Amortized wastage cannot exceed the wafer area per die.
    EXPECT_LT(b.wastedAreaMm2,
              WaferModel().areaMm2() / b.diesPerWafer);
    (void)node;
}

INSTANTIATE_TEST_SUITE_P(
    NodeAreaGrid, DieGridTest,
    ::testing::Combine(::testing::Values(5.0, 7.0, 10.0, 14.0,
                                         28.0, 65.0),
                       ::testing::Values(10.0, 50.0, 100.0, 300.0,
                                         628.0)));

/** Full-estimate invariants across packaging architectures. */
class ArchSweepTest
    : public ::testing::TestWithParam<PackagingArch>
{};

TEST_P(ArchSweepTest, ReportComponentsAreNonNegative)
{
    EcoChipConfig config;
    config.package.arch = GetParam();
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const CarbonReport r = estimator.estimate(
        testcases::ga102Split(estimator.tech(), 4));

    EXPECT_GT(r.mfgCo2Kg, 0.0);
    EXPECT_GT(r.hi.packageCo2Kg, 0.0);
    EXPECT_GE(r.hi.routingCo2Kg, 0.0);
    EXPECT_GT(r.designCo2Kg, 0.0);
    EXPECT_GT(r.operation.co2Kg, 0.0);
    EXPECT_GE(r.hi.nocPowerW, 0.0);
    EXPECT_GT(r.hi.packageYield, 0.0);
    EXPECT_LE(r.hi.packageYield, 1.0);
}

TEST_P(ArchSweepTest, HiOverheadIsMinorityOfEmbodied)
{
    // For a realistic GPU-class system, packaging overheads stay
    // well below the silicon manufacturing carbon.
    EcoChipConfig config;
    config.package.arch = GetParam();
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const CarbonReport r = estimator.estimate(
        testcases::ga102Split(estimator.tech(), 4));
    EXPECT_LT(r.hi.totalCo2Kg(), 0.5 * r.mfgCo2Kg);
}

TEST_P(ArchSweepTest, CostReportIsConsistent)
{
    EcoChipConfig config;
    config.package.arch = GetParam();
    EcoChip estimator(config);
    const CostBreakdown c = estimator.cost(
        testcases::ga102Split(estimator.tech(), 4));
    EXPECT_GT(c.dieUsd, 0.0);
    EXPECT_GT(c.packageUsd, 0.0);
    EXPECT_GT(c.assemblyUsd, 0.0);
    EXPECT_NEAR(c.totalUsd(),
                c.dieUsd + c.packageUsd + c.assemblyUsd + c.nreUsd,
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ArchSweepTest,
    ::testing::Values(PackagingArch::RdlFanout,
                      PackagingArch::SiliconBridge,
                      PackagingArch::PassiveInterposer,
                      PackagingArch::ActiveInterposer,
                      PackagingArch::Stack3d));

/** Nc-sweep invariants for the disaggregation path. */
class NcSweepTest : public ::testing::TestWithParam<int>
{};

TEST_P(NcSweepTest, SplitNeverHurtsSiliconMfg)
{
    // Splitting a die into equal parts always improves aggregate
    // yield, so silicon mfg carbon must not increase.
    TechDb tech;
    ManufacturingModel mfg(tech);
    const SystemSpec whole =
        makeUniformSplit("w", 500.0, 7.0, 1, tech);
    const SystemSpec split =
        makeUniformSplit("s", 500.0, 7.0, GetParam(), tech);
    EXPECT_LE(mfg.systemMfgCo2Kg(split),
              mfg.systemMfgCo2Kg(whole) + 1e-9);
}

TEST_P(NcSweepTest, EstimateScalesChipletReports)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const int nc = GetParam();
    if (nc < 3)
        GTEST_SKIP();
    const CarbonReport r = estimator.estimate(
        testcases::ga102Split(estimator.tech(), nc));
    EXPECT_EQ(r.chiplets.size(), static_cast<std::size_t>(nc));
    double sum = 0.0;
    for (const auto &c : r.chiplets)
        sum += c.mfgCo2Kg;
    EXPECT_NEAR(sum, r.mfgCo2Kg, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ChipletCounts, NcSweepTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10));

/** Carbon-intensity proportionality across the model stack. */
class IntensitySweepTest : public ::testing::TestWithParam<double>
{};

TEST_P(IntensitySweepTest, EmbodiedFallsWithCleanerEnergy)
{
    const double intensity = GetParam();
    EcoChipConfig dirty;
    dirty.operating = testcases::ga102Operating();
    EcoChipConfig cleaner = dirty;
    cleaner.fabIntensityGPerKwh = intensity;
    cleaner.package.intensityGPerKwh = intensity;
    cleaner.design.intensityGPerKwh = intensity;

    EcoChip dirty_est(dirty);
    EcoChip clean_est(cleaner);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        dirty_est.tech(), 7.0, 14.0, 10.0);
    EXPECT_LT(clean_est.estimate(system).embodiedCo2Kg(),
              dirty_est.estimate(system).embodiedCo2Kg());
}

INSTANTIATE_TEST_SUITE_P(Intensities, IntensitySweepTest,
                         ::testing::Values(11.0, 41.0, 230.0,
                                           450.0));

/** Lifetime sweep: operational carbon is linear in lifetime. */
class LifetimeSweepTest : public ::testing::TestWithParam<double>
{};

TEST_P(LifetimeSweepTest, OperationalCarbonLinearInLifetime)
{
    const double years = GetParam();
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    config.operating.lifetimeYears = years;
    EcoChip estimator(config);
    const SystemSpec mono =
        testcases::ga102Monolithic(estimator.tech());
    const double per_two_years =
        estimator.estimate(mono).operation.co2Kg / years * 2.0;

    EcoChipConfig base;
    base.operating = testcases::ga102Operating();
    EcoChip base_est(base);
    EXPECT_NEAR(per_two_years,
                base_est.estimate(mono).operation.co2Kg, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Lifetimes, LifetimeSweepTest,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0));

} // namespace
} // namespace ecochip
