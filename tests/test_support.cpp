/**
 * @file
 * Unit tests for units, error helpers, TablePrinter, CsvWriter.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "support/csv.h"
#include "support/error.h"
#include "support/table_printer.h"
#include "support/units.h"

namespace ecochip {
namespace {

TEST(Units, AreaConversionsAreInverse)
{
    EXPECT_DOUBLE_EQ(units::kMm2PerCm2 * units::kCm2PerMm2, 1.0);
    EXPECT_DOUBLE_EQ(100.0 * units::kCm2PerMm2, 1.0);
}

TEST(Units, CarbonConversion)
{
    // 700 g/kWh * 10 kWh = 7 kg.
    EXPECT_DOUBLE_EQ(units::carbonKg(700.0, 10.0), 7.0);
    EXPECT_DOUBLE_EQ(units::carbonKg(700.0, 0.0), 0.0);
}

TEST(Units, TimeConversion)
{
    EXPECT_DOUBLE_EQ(units::kHoursPerYear, 365.0 * 24.0);
    EXPECT_DOUBLE_EQ(1000.0 * units::kKwhPerWh, 1.0);
}

TEST(ErrorHelpers, RequireConfigThrowsOnlyWhenFalse)
{
    EXPECT_NO_THROW(requireConfig(true, "ok"));
    EXPECT_THROW(requireConfig(false, "bad"), ConfigError);
}

TEST(ErrorHelpers, RequireModelThrowsOnlyWhenFalse)
{
    EXPECT_NO_THROW(requireModel(true, "ok"));
    EXPECT_THROW(requireModel(false, "bug"), ModelError);
}

TEST(ErrorHelpers, MessagesArePrefixed)
{
    try {
        requireConfig(false, "node must be positive");
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "config error: node must be positive"),
                  std::string::npos);
    }
}

TEST(ErrorHelpers, BothDeriveFromError)
{
    EXPECT_THROW(requireConfig(false, "x"), Error);
    EXPECT_THROW(requireModel(false, "x"), Error);
}

TEST(TablePrinter, AlignsColumnsAndSeparatesHeader)
{
    TablePrinter table({"name", "value"});
    table.addRow(std::vector<std::string>{"alpha", "1.5"});
    table.addRow(std::vector<std::string>{"b", "20.25"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TablePrinter, RejectsMismatchedRowWidth)
{
    TablePrinter table({"a", "b"});
    EXPECT_THROW(table.addRow({std::string("only-one")}),
                 ConfigError);
}

TEST(TablePrinter, NumericRowHelper)
{
    TablePrinter table({"x", "y"});
    table.addRow(std::vector<double>{1.0, 2.5});
    table.addRow("label", {3.0});
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TablePrinter, FormatNumberUsesFixedMidRange)
{
    EXPECT_EQ(TablePrinter::formatNumber(1.5, 2), "1.50");
    EXPECT_EQ(TablePrinter::formatNumber(0.0, 2), "0.00");
}

TEST(TablePrinter, FormatNumberUsesScientificExtremes)
{
    const std::string big =
        TablePrinter::formatNumber(1.23e9, 3);
    EXPECT_NE(big.find('e'), std::string::npos);
    const std::string small =
        TablePrinter::formatNumber(1.23e-6, 3);
    EXPECT_NE(small.find('e'), std::string::npos);
}

TEST(CsvWriter, PlainRow)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow({"a", "b", "c"});
    EXPECT_EQ(oss.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCells)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""),
              "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, LabeledNumericRow)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow("row", {1.0, 2.0}, 2);
    EXPECT_EQ(oss.str(), "row,1.00,2.00\n");
}

} // namespace
} // namespace ecochip
