/**
 * @file
 * Tests for the extension features: mask-set NRE carbon (paper
 * Sec. V-C future work) and the carbon-aware disaggregation
 * optimizer (Sec. VI automated).
 */

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/testcases.h"
#include "manufacture/nre_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

class NreTest : public ::testing::Test
{
  protected:
    TechDb tech_;
    NreCarbonModel nre_{tech_};
};

TEST_F(NreTest, MaskSetCarbonMatchesEnergyTable)
{
    // 20,000 kWh at 700 g/kWh = 14,000 kg at 7 nm.
    EXPECT_NEAR(nre_.maskSetCo2Kg(7.0),
                tech_.maskSetEnergyKwh(7.0) * 0.7, 1e-9);
}

TEST_F(NreTest, AdvancedNodesHaveCostlierMasks)
{
    EXPECT_GT(nre_.maskSetCo2Kg(3.0), nre_.maskSetCo2Kg(7.0));
    EXPECT_GT(nre_.maskSetCo2Kg(7.0), nre_.maskSetCo2Kg(28.0));
    EXPECT_GT(nre_.maskSetCo2Kg(28.0), nre_.maskSetCo2Kg(65.0));
}

TEST_F(NreTest, AmortizesOverChipletVolume)
{
    Chiplet c = Chiplet::fromArea("c", DesignType::Logic, 7.0,
                                  100.0, tech_);
    EXPECT_NEAR(nre_.amortizedCo2Kg(c),
                nre_.maskSetCo2Kg(7.0) / 100000.0, 1e-12);

    NreCarbonModel small_run(tech_, 700.0, 1000.0);
    EXPECT_NEAR(small_run.amortizedCo2Kg(c),
                nre_.maskSetCo2Kg(7.0) / 1000.0, 1e-12);
}

TEST_F(NreTest, ReusedChipletsShareMasks)
{
    Chiplet c = Chiplet::fromArea("c", DesignType::Logic, 7.0,
                                  100.0, tech_);
    c.reused = true;
    EXPECT_DOUBLE_EQ(nre_.amortizedCo2Kg(c), 0.0);
}

TEST_F(NreTest, MonolithPaysOneMaskSet)
{
    SystemSpec mono;
    mono.singleDie = true;
    mono.chiplets.push_back(Chiplet::fromArea(
        "logic", DesignType::Logic, 7.0, 100.0, tech_));
    mono.chiplets.push_back(Chiplet::fromArea(
        "mem", DesignType::Memory, 7.0, 50.0, tech_));
    EXPECT_NEAR(nre_.systemNreCo2Kg(mono),
                nre_.maskSetCo2Kg(7.0) / 100000.0, 1e-12);
}

TEST_F(NreTest, Validation)
{
    EXPECT_THROW(NreCarbonModel(tech_, 0.0), ConfigError);
    EXPECT_THROW(NreCarbonModel(tech_, 700.0, 0.5), ConfigError);
    SystemSpec empty;
    EXPECT_THROW(nre_.systemNreCo2Kg(empty), ConfigError);
}

TEST(NreIntegration, FlagAddsNreToEmbodied)
{
    EcoChipConfig base;
    base.operating = testcases::ga102Operating();
    EcoChipConfig with_nre = base;
    with_nre.includeMaskNre = true;

    EcoChip plain(base);
    EcoChip nre(with_nre);
    const SystemSpec system = testcases::ga102ThreeChiplet(
        plain.tech(), 7.0, 14.0, 10.0);

    const CarbonReport r_plain = plain.estimate(system);
    const CarbonReport r_nre = nre.estimate(system);
    EXPECT_DOUBLE_EQ(r_plain.nreCo2Kg, 0.0);
    EXPECT_GT(r_nre.nreCo2Kg, 0.0);
    EXPECT_NEAR(r_nre.embodiedCo2Kg(),
                r_plain.embodiedCo2Kg() + r_nre.nreCo2Kg, 1e-9);
}

TEST(NreIntegration, IdenticalSlicesShareOneMaskSet)
{
    // Nc=6 has four identical digital slices: only the first
    // carries mask carbon, so the per-system digital mask NRE
    // equals the monolith's single 7 nm set.
    TechDb tech;
    NreCarbonModel nre(tech);
    const SystemSpec split = testcases::ga102Split(tech, 6);
    int fresh = 0;
    for (const auto &c : split.chiplets)
        if (!c.reused && c.type == DesignType::Logic)
            ++fresh;
    EXPECT_EQ(fresh, 1);
}

TEST(NreIntegration, VolumeManufacturedChipletsAmortizeBetter)
{
    // The paper's Sec. V-C prediction: "when chiplets are
    // manufactured in large volumes, the CFP associated with NRE
    // costs ... also gets amortized across NMi" -- chiplets built
    // at 10x the system volume beat the monolith's mask set even
    // though they need more mask sets in total.
    EcoChipConfig mono_config;
    mono_config.includeMaskNre = true;
    mono_config.operating = testcases::ga102Operating();
    EcoChip mono_est(mono_config);
    const CarbonReport mono = mono_est.estimate(
        testcases::ga102Monolithic(mono_est.tech()));

    EcoChipConfig reuse_config = mono_config;
    reuse_config.design.chipletVolume = 1.0e6; // NMi = 10 NS
    EcoChip reuse_est(reuse_config);
    const CarbonReport split = reuse_est.estimate(
        testcases::ga102Split(reuse_est.tech(), 6));

    EXPECT_LT(split.nreCo2Kg, mono.nreCo2Kg);
}

TEST(Optimizer, EnumerationCountMatchesSpace)
{
    DisaggregationOptimizer optimizer;
    DisaggregationSpace space;
    space.digitalNodesNm = {7.0};
    space.memoryNodesNm = {10.0, 14.0};
    space.analogNodesNm = {10.0, 14.0};
    space.digitalSplits = {1, 2};
    space.architectures = {PackagingArch::RdlFanout};
    space.includeMonolith = true;

    const auto points = optimizer.enumerate(
        testcases::ga102Blocks(), space);
    // 1 monolith + 1 arch x 2 splits x 1 x 2 x 2 nodes = 9.
    EXPECT_EQ(points.size(), 9u);
    EXPECT_EQ(points.front().digitalSplit, 0);
}

TEST(Optimizer, BestBeatsAllOthers)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    DisaggregationOptimizer optimizer(config);
    const auto points = optimizer.enumerate(
        testcases::ga102Blocks(), DisaggregationSpace{});
    const auto &best =
        DisaggregationOptimizer::bestByEmbodied(points);
    for (const auto &p : points)
        EXPECT_LE(best.report.embodiedCo2Kg(),
                  p.report.embodiedCo2Kg());
    const auto &best_total =
        DisaggregationOptimizer::bestByTotal(points);
    for (const auto &p : points)
        EXPECT_LE(best_total.report.totalCo2Kg(),
                  p.report.totalCo2Kg());
}

TEST(Optimizer, FindsChipletConfigBelowMonolith)
{
    // For the GA102-class SoC the optimizer must discover an HI
    // configuration greener than the monolith -- the paper's
    // thesis as an executable assertion.
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    DisaggregationOptimizer optimizer(config);
    const auto points = optimizer.enumerate(
        testcases::ga102Blocks(), DisaggregationSpace{});

    const auto &mono = points.front();
    ASSERT_EQ(mono.digitalSplit, 0);
    const auto &best =
        DisaggregationOptimizer::bestByEmbodied(points);
    EXPECT_GT(best.digitalSplit, 0);
    EXPECT_LT(best.report.embodiedCo2Kg(),
              mono.report.embodiedCo2Kg());
}

TEST(Optimizer, LabelsAreDescriptive)
{
    DisaggregationOptimizer optimizer;
    DisaggregationSpace space;
    space.digitalSplits = {2};
    space.memoryNodesNm = {10.0};
    space.analogNodesNm = {14.0};
    space.architectures = {PackagingArch::SiliconBridge};
    const auto points = optimizer.enumerate(
        testcases::ga102Blocks(), space);
    EXPECT_EQ(points.front().label(), "monolith@7nm");
    EXPECT_EQ(points.back().label(),
              "2xD@7/M@10/A@14 silicon_bridge");
}

TEST(Optimizer, Validation)
{
    DisaggregationOptimizer optimizer;
    DisaggregationSpace bad;
    bad.digitalSplits = {};
    EXPECT_THROW(
        optimizer.enumerate(testcases::ga102Blocks(), bad),
        ConfigError);
    bad = DisaggregationSpace{};
    bad.architectures = {};
    EXPECT_THROW(
        optimizer.enumerate(testcases::ga102Blocks(), bad),
        ConfigError);
    EXPECT_THROW(DisaggregationOptimizer::bestByEmbodied({}),
                 ConfigError);
}

} // namespace
} // namespace ecochip
