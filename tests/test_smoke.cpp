/**
 * @file
 * End-to-end smoke tests: the full pipeline on the built-in
 * testcases.
 */

#include <gtest/gtest.h>

#include "core/ecochip.h"
#include "core/testcases.h"

namespace ecochip {
namespace {

TEST(Smoke, Ga102MonolithEstimates)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);

    const SystemSpec mono =
        testcases::ga102Monolithic(estimator.tech());
    const CarbonReport report = estimator.estimate(mono);

    EXPECT_GT(report.mfgCo2Kg, 0.0);
    EXPECT_EQ(report.hi.totalCo2Kg(), 0.0);
    EXPECT_GT(report.designCo2Kg, 0.0);
    EXPECT_GT(report.operation.co2Kg, 0.0);
    EXPECT_GT(report.totalCo2Kg(), report.embodiedCo2Kg());
}

TEST(Smoke, Ga102ThreeChipletBeatsMonolith)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);

    const CarbonReport mono = estimator.estimate(
        testcases::ga102Monolithic(estimator.tech()));
    const CarbonReport hi = estimator.estimate(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 10.0,
                                     14.0));

    // The paper's headline: the (7,10,14) disaggregation lowers
    // embodied carbon vs. the 7 nm monolith despite HI overheads.
    EXPECT_LT(hi.embodiedCo2Kg(), mono.embodiedCo2Kg());
    EXPECT_GT(hi.hi.totalCo2Kg(), 0.0);
}

} // namespace
} // namespace ecochip
