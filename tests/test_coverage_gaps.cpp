/**
 * @file
 * Targeted tests for remaining coverage gaps: per-type operational
 * power, cost with custom knobs, group-aware standalone floorplan,
 * exploration of 4-chiplet systems, and CLI-adjacent helpers.
 */

#include <gtest/gtest.h>

#include "core/ecochip.h"
#include "core/explorer.h"
#include "core/testcases.h"
#include "floorplan/floorplan.h"
#include "operation/operational_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

TEST(OperationalTypes, AllDesignTypesProducePower)
{
    TechDb tech;
    OperationalModel model(tech, OperatingSpec{});
    for (DesignType type : {DesignType::Logic, DesignType::Memory,
                            DesignType::Analog}) {
        Chiplet c = Chiplet::fromArea("c", type, 7.0, 50.0, tech);
        EXPECT_GT(model.chipletPowerW(c), 0.0) << toString(type);
    }
}

TEST(OperationalTypes, PowerScalesWithContentNotType)
{
    // Eq. 14 charges transistors; at equal area the denser block
    // draws more.
    TechDb tech;
    OperationalModel model(tech, OperatingSpec{});
    const Chiplet logic = Chiplet::fromArea(
        "l", DesignType::Logic, 7.0, 50.0, tech);
    const Chiplet analog = Chiplet::fromArea(
        "a", DesignType::Analog, 7.0, 50.0, tech);
    EXPECT_GT(model.chipletPowerW(logic),
              model.chipletPowerW(analog));
}

TEST(CostKnobs, CustomParamsPropagate)
{
    EcoChip estimator;
    const SystemSpec system = testcases::ga102ThreeChiplet(
        estimator.tech(), 7.0, 10.0, 14.0);

    CostParams pricey;
    pricey.attachCostPerChipletUsd = 10.0;
    pricey.testCostPerChipletUsd = 5.0;
    const CostBreakdown base = estimator.cost(system);
    const CostBreakdown expensive =
        estimator.cost(system, pricey);
    EXPECT_NEAR(expensive.assemblyUsd, 3.0 * 15.0, 1e-9);
    EXPECT_GT(expensive.assemblyUsd, base.assemblyUsd);
    EXPECT_DOUBLE_EQ(expensive.dieUsd, base.dieUsd);
}

TEST(CostKnobs, StackGroupsShrinkCostFloorplanToo)
{
    // The cost model's substrate area must honor stack groups the
    // same way the carbon model does.
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    EcoChip estimator(config);

    const SystemSpec hbm =
        testcases::ga102Hbm(estimator.tech(), 2, 4);
    SystemSpec planar = hbm;
    for (auto &chiplet : planar.chiplets)
        chiplet.stackGroup.clear();

    const CostBreakdown stacked_cost = estimator.cost(hbm);
    const CostBreakdown planar_cost = estimator.cost(planar);
    EXPECT_LT(stacked_cost.packageUsd, planar_cost.packageUsd);
}

TEST(FloorplanGroups, StandalonePlannerIsGroupAware)
{
    TechDb tech;
    const SystemSpec hbm = testcases::ga102Hbm(tech, 2, 4);
    const FloorplanResult fp = Floorplanner().plan(hbm, tech);
    // digital + analog + 2 towers.
    EXPECT_EQ(fp.placements.size(), 4u);
    EXPECT_NO_THROW(fp.placement("hbm0"));
    EXPECT_NO_THROW(fp.placement("hbm1"));

    const auto boxes = planarBoxes(hbm, tech);
    EXPECT_EQ(boxes.size(), 4u);
}

TEST(ExplorerWide, FourChipletSweepIsConsistent)
{
    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    TechSpaceExplorer explorer(estimator);

    const SystemSpec four =
        testcases::ga102FourChiplet(estimator.tech(), 7.0);
    const auto points = explorer.sweep(four, {7.0, 10.0});
    EXPECT_EQ(points.size(), 16u); // 2^4
    for (const auto &p : points) {
        EXPECT_EQ(p.nodesNm.size(), 4u);
        EXPECT_GT(p.report.embodiedCo2Kg(), 0.0);
    }
}

TEST(ReportFields, NreAppearsInJsonReport)
{
    EcoChipConfig config;
    config.includeMaskNre = true;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);
    const CarbonReport r = estimator.estimate(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 14.0,
                                     10.0));
    EXPECT_GT(r.nreCo2Kg, 0.0);
}

TEST(MonolithNodes, MonolithRetargetsConsistently)
{
    // Re-deriving the monolith at each node keeps the block mix:
    // total area grows monotonically toward legacy nodes.
    TechDb tech;
    double prev = 0.0;
    for (double node : {7.0, 10.0, 14.0}) {
        const SystemSpec mono =
            testcases::ga102Monolithic(tech, node);
        const double area = mono.totalSiliconAreaMm2(tech);
        EXPECT_GT(area, prev);
        prev = area;
        EXPECT_DOUBLE_EQ(mono.monolithicNodeNm(), node);
    }
}

TEST(EmrScale, MonolithEmrIsRericleScaleProblem)
{
    // The hypothetical EMR monolith is a 1526 mm^2 die: its yield
    // collapses relative to the twin 763 mm^2 dies -- the whole
    // reason the product is 2-chiplet.
    TechDb tech;
    ManufacturingModel mfg(tech);
    YieldModel ym(tech);
    EXPECT_LT(ym.dieYield(1526.0, 10.0), 0.25);
    EXPECT_GT(ym.dieYield(763.0, 10.0), 0.35);
    EXPECT_GT(mfg.systemMfgCo2Kg(testcases::emrMonolithic(tech)),
              1.5 * mfg.systemMfgCo2Kg(
                        testcases::emrTwoChiplet(tech)));
}

} // namespace
} // namespace ecochip
