/**
 * @file
 * Unit and property tests for the manufacturing-CFP model
 * (Eqs. 5-6).
 */

#include <gtest/gtest.h>

#include "manufacture/mfg_model.h"
#include "support/error.h"
#include "support/units.h"
#include "yield/yield_model.h"

namespace ecochip {
namespace {

class MfgTest : public ::testing::Test
{
  protected:
    TechDb tech_;
    ManufacturingModel mfg_{tech_};
};

TEST_F(MfgTest, GrossCfpaMatchesEq6Numerator)
{
    // Numerator of Eq. 6 at 7 nm with coal (700 g/kWh):
    // eta_eq * 0.7 kg/kWh * EPA + Cgas + Cmat.
    const double expected =
        tech_.equipmentDerate(7.0) * 0.7 *
            tech_.epaKwhPerCm2(7.0) +
        tech_.cgasKgPerCm2(7.0) + tech_.cmaterialKgPerCm2(7.0);
    EXPECT_NEAR(mfg_.grossCfpaKgPerCm2(7.0), expected, 1e-12);
}

TEST_F(MfgTest, DieMfgMatchesEq5ByHand)
{
    const double area = 100.0, node = 7.0;
    const MfgBreakdown b = mfg_.dieMfg(area, node);

    YieldModel ym(tech_);
    const double yield = ym.dieYield(area, node);
    EXPECT_DOUBLE_EQ(b.yield, yield);

    const double cfpa = mfg_.grossCfpaKgPerCm2(node) / yield;
    EXPECT_NEAR(b.cfpaKgPerCm2, cfpa, 1e-12);
    EXPECT_NEAR(b.dieCo2Kg, cfpa * 1.0, 1e-12); // 100 mm^2 = 1 cm^2

    WaferModel wafer;
    const double wasted = wafer.wastedAreaPerDieMm2(area);
    EXPECT_NEAR(b.wastedCo2Kg,
                tech_.cfpaSiKgPerCm2(node) * wasted *
                    units::kCm2PerMm2,
                1e-12);
    EXPECT_NEAR(b.totalCo2Kg(), b.dieCo2Kg + b.wastedCo2Kg,
                1e-12);
}

TEST_F(MfgTest, WastageToggleRemovesPeripheryTerm)
{
    ManufacturingModel no_waste(tech_);
    no_waste.setIncludeWastage(false);
    EXPECT_FALSE(no_waste.includeWastage());

    const MfgBreakdown with = mfg_.dieMfg(200.0, 7.0);
    const MfgBreakdown without = no_waste.dieMfg(200.0, 7.0);
    EXPECT_GT(with.wastedCo2Kg, 0.0);
    EXPECT_DOUBLE_EQ(without.wastedCo2Kg, 0.0);
    EXPECT_DOUBLE_EQ(with.dieCo2Kg, without.dieCo2Kg);
}

TEST_F(MfgTest, ChipletMfgUsesAreaModel)
{
    const Chiplet chiplet = Chiplet::fromArea(
        "c", DesignType::Logic, 7.0, 150.0, tech_);
    const MfgBreakdown via_chiplet = mfg_.chipletMfg(chiplet);
    const MfgBreakdown via_die = mfg_.dieMfg(150.0, 7.0);
    EXPECT_NEAR(via_chiplet.totalCo2Kg(), via_die.totalCo2Kg(),
                1e-9);
}

TEST_F(MfgTest, SystemSumsChiplets)
{
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    system.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 10.0, 50.0, tech_));

    const double expected =
        mfg_.chipletMfg(system.chiplets[0]).totalCo2Kg() +
        mfg_.chipletMfg(system.chiplets[1]).totalCo2Kg();
    EXPECT_NEAR(mfg_.systemMfgCo2Kg(system), expected, 1e-12);
}

TEST_F(MfgTest, SingleDieCombinesBlocksIntoOneDie)
{
    SystemSpec mono;
    mono.singleDie = true;
    mono.chiplets.push_back(Chiplet::fromArea(
        "logic", DesignType::Logic, 7.0, 100.0, tech_));
    mono.chiplets.push_back(Chiplet::fromArea(
        "mem", DesignType::Memory, 7.0, 50.0, tech_));

    EXPECT_NEAR(mfg_.systemMfgCo2Kg(mono),
                mfg_.dieMfg(150.0, 7.0).totalCo2Kg(), 1e-9);

    // One big die yields worse than two smaller dies -> costs
    // more, the crux of Fig. 2.
    SystemSpec split = mono;
    split.singleDie = false;
    EXPECT_GT(mfg_.systemMfgCo2Kg(mono),
              mfg_.systemMfgCo2Kg(split));
}

TEST_F(MfgTest, SuperlinearGrowthWithArea)
{
    // Doubling the area more than doubles the carbon (yield
    // decay), Fig. 2(a).
    const double small = mfg_.dieMfg(100.0, 10.0).dieCo2Kg;
    const double large = mfg_.dieMfg(200.0, 10.0).dieCo2Kg;
    EXPECT_GT(large, 2.0 * small);
}

TEST_F(MfgTest, AdvancedNodesCostMorePerArea)
{
    EXPECT_GT(mfg_.grossCfpaKgPerCm2(7.0),
              mfg_.grossCfpaKgPerCm2(28.0));
    EXPECT_GT(mfg_.grossCfpaKgPerCm2(28.0),
              mfg_.grossCfpaKgPerCm2(65.0));
}

TEST_F(MfgTest, InputValidation)
{
    EXPECT_THROW(mfg_.dieMfg(0.0, 7.0), ConfigError);
    EXPECT_THROW(mfg_.dieMfg(-10.0, 7.0), ConfigError);
    EXPECT_THROW(ManufacturingModel(tech_, WaferModel(), 0.0),
                 ConfigError);
    SystemSpec empty;
    EXPECT_THROW(mfg_.systemMfgCo2Kg(empty), ConfigError);
}

TEST_F(MfgTest, CleanerFabEnergyLowersCarbon)
{
    ManufacturingModel coal(tech_, WaferModel(), 700.0);
    ManufacturingModel wind(tech_, WaferModel(), 11.0);
    EXPECT_GT(coal.dieMfg(100.0, 7.0).totalCo2Kg(),
              wind.dieMfg(100.0, 7.0).totalCo2Kg());
    // Gas and material terms are energy-source independent: the
    // wind fab still emits a material+gas floor.
    EXPECT_GT(wind.dieMfg(100.0, 7.0).totalCo2Kg(), 0.5);
}

/** Manufacturing carbon is monotone in area at every node. */
class MfgAreaMonotonicityTest
    : public ::testing::TestWithParam<double>
{
  protected:
    TechDb tech_;
    ManufacturingModel mfg_{tech_};
};

TEST_P(MfgAreaMonotonicityTest, DieCarbonGrowsWithArea)
{
    const double node = GetParam();
    double prev = 0.0;
    for (double area : {10.0, 25.0, 50.0, 100.0, 200.0, 400.0}) {
        const double co2 = mfg_.dieMfg(area, node).totalCo2Kg();
        EXPECT_GT(co2, prev);
        prev = co2;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Nodes, MfgAreaMonotonicityTest,
    ::testing::ValuesIn(TechDb::standardNodesNm()));

} // namespace
} // namespace ecochip
