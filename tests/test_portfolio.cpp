/**
 * @file
 * Tests for the cross-product chiplet-reuse portfolio analysis.
 */

#include <gtest/gtest.h>

#include "core/portfolio.h"
#include "core/testcases.h"
#include "design/design_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

class PortfolioTest : public ::testing::Test
{
  protected:
    Product
    makeProduct(const std::string &name, double io_area,
                double volume) const
    {
        Product product;
        product.system.name = name;
        product.system.chiplets.push_back(Chiplet::fromArea(
            name + "-compute", DesignType::Logic, 7.0, 100.0,
            tech_));
        // The shared design: identical IO chiplet in every
        // product.
        product.system.chiplets.push_back(Chiplet::fromArea(
            "common-io", DesignType::Analog, 14.0, io_area,
            tech_));
        product.volume = volume;
        product.operating = OperatingSpec{};
        return product;
    }

    TechDb tech_;
    PortfolioAnalyzer analyzer_{EcoChipConfig{}};
};

TEST_F(PortfolioTest, CountsDistinctDesigns)
{
    const auto result = analyzer_.analyze(
        {makeProduct("a", 25.0, 1e5),
         makeProduct("b", 25.0, 1e5)});
    // a-compute, b-compute, common-io.
    EXPECT_EQ(result.distinctDesigns, 3);
    EXPECT_EQ(result.totalInstances, 4);
    EXPECT_EQ(result.products.size(), 2u);
}

TEST_F(PortfolioTest, SharingSavesExactlyTheDuplicatedDesigns)
{
    // Two products sharing one IO design: sharing saves one full
    // IO design effort.
    const auto result = analyzer_.analyze(
        {makeProduct("a", 25.0, 1e5),
         makeProduct("b", 25.0, 1e5)});

    DesignModel design(tech_, DesignParams{});
    Chiplet io = Chiplet::fromArea("common-io",
                                   DesignType::Analog, 14.0,
                                   25.0, tech_);
    const double io_once = design.chipletDesign(io).co2Kg;
    EXPECT_NEAR(result.designSharingSavingsCo2Kg, io_once, 1e-6);
}

TEST_F(PortfolioTest, SingleProductHasNoSharingSavings)
{
    const auto result =
        analyzer_.analyze({makeProduct("solo", 25.0, 1e5)});
    EXPECT_NEAR(result.designSharingSavingsCo2Kg, 0.0, 1e-12);
    EXPECT_NEAR(result.products[0].sharedDesignCo2Kg,
                result.products[0].isolatedDesignCo2Kg, 1e-12);
}

TEST_F(PortfolioTest, SharedAmortizationSplitsOverTotalVolume)
{
    // IO design amortized over 3e5 parts when three products of
    // 1e5 each share it.
    const auto result = analyzer_.analyze(
        {makeProduct("a", 25.0, 1e5), makeProduct("b", 25.0, 1e5),
         makeProduct("c", 25.0, 1e5)});

    DesignModel design(tech_, DesignParams{});
    Chiplet io = Chiplet::fromArea("common-io",
                                   DesignType::Analog, 14.0,
                                   25.0, tech_);
    const double io_once = design.chipletDesign(io).co2Kg;

    for (const auto &product : result.products) {
        // shared - isolated difference comes only from the IO
        // chiplet: compute dies are product-unique.
        const double io_share_delta =
            io_once / 1e5 - io_once / 3e5;
        EXPECT_NEAR(product.isolatedDesignCo2Kg -
                        product.sharedDesignCo2Kg,
                    io_share_delta, 1e-9);
    }
}

TEST_F(PortfolioTest, TwinInstancesInOneProductShareOneDesign)
{
    Product twin;
    twin.system.name = "twin";
    const Chiplet die = Chiplet::fromArea(
        "die", DesignType::Logic, 7.0, 100.0, tech_);
    twin.system.chiplets.push_back(die);
    twin.system.chiplets.push_back(die);
    twin.volume = 1e5;

    const auto result = analyzer_.analyze({twin});
    EXPECT_EQ(result.distinctDesigns, 1);
    EXPECT_EQ(result.totalInstances, 2);

    DesignModel design(tech_, DesignParams{});
    EXPECT_NEAR(result.products[0].sharedDesignCo2Kg,
                design.chipletDesign(die).co2Kg / 1e5, 1e-9);
}

TEST_F(PortfolioTest, FleetCarbonSumsProducts)
{
    const auto result = analyzer_.analyze(
        {makeProduct("a", 25.0, 2e5),
         makeProduct("b", 25.0, 1e5)});
    double expected = 0.0;
    expected += 2e5 * result.products[0].report.totalCo2Kg();
    expected += 1e5 * result.products[1].report.totalCo2Kg();
    EXPECT_NEAR(result.fleetCo2Kg, expected, 1e-3);
}

TEST_F(PortfolioTest, MaskNreFoldsIntoSharing)
{
    EcoChipConfig with_nre;
    with_nre.includeMaskNre = true;
    PortfolioAnalyzer nre_analyzer(with_nre);

    const auto plain = analyzer_.analyze(
        {makeProduct("a", 25.0, 1e5),
         makeProduct("b", 25.0, 1e5)});
    const auto with = nre_analyzer.analyze(
        {makeProduct("a", 25.0, 1e5),
         makeProduct("b", 25.0, 1e5)});
    // Shared mask sets add to both the per-part share and the
    // sharing savings.
    EXPECT_GT(with.designSharingSavingsCo2Kg,
              plain.designSharingSavingsCo2Kg);
    EXPECT_GT(with.products[0].sharedDesignCo2Kg,
              plain.products[0].sharedDesignCo2Kg);
}

TEST_F(PortfolioTest, Validation)
{
    EXPECT_THROW(analyzer_.analyze({}), ConfigError);
    Product empty;
    empty.system.name = "empty";
    EXPECT_THROW(analyzer_.analyze({empty}), ConfigError);
    Product zero_volume = makeProduct("z", 25.0, 0.5);
    EXPECT_THROW(analyzer_.analyze({zero_volume}), ConfigError);
}

TEST_F(PortfolioTest, DifferentNodesAreDifferentDesigns)
{
    Product a = makeProduct("a", 25.0, 1e5);
    Product b = makeProduct("b", 25.0, 1e5);
    // Retarget b's IO chiplet: no longer the same design.
    for (auto &chiplet : b.system.chiplets)
        if (chiplet.name == "common-io")
            chiplet.nodeNm = 22.0;

    const auto result = analyzer_.analyze({a, b});
    EXPECT_EQ(result.distinctDesigns, 4);
    EXPECT_NEAR(result.designSharingSavingsCo2Kg, 0.0, 1e-12);
}

} // namespace
} // namespace ecochip
