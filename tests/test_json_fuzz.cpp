/**
 * @file
 * Randomized JSON round-trip property tests: structurally random
 * documents generated with the deterministic RNG must survive
 * dump -> parse -> dump unchanged, in both compact and pretty
 * form.
 */

#include <string>

#include <gtest/gtest.h>

#include "json/json.h"
#include "support/rng.h"

namespace ecochip::json {
namespace {

/** Generate a random JSON value with bounded depth. */
Value
randomValue(Rng &rng, int depth)
{
    const std::uint64_t pick = rng.next() % (depth <= 0 ? 4 : 6);
    switch (pick) {
      case 0:
        return Value(); // null
      case 1:
        return Value(rng.next() % 2 == 0);
      case 2: {
        // Mix of integral, fractional, negative, and extreme
        // magnitudes.
        switch (rng.next() % 4) {
          case 0:
            return Value(static_cast<double>(
                static_cast<std::int64_t>(rng.next() % 2000000) -
                1000000));
          case 1: return Value(rng.uniform(-1e6, 1e6));
          case 2: return Value(rng.uniform(-1e-6, 1e-6));
          default: return Value(rng.uniform(-1e18, 1e18));
        }
      }
      case 3: {
        // Strings with escapes and control characters.
        static const char alphabet[] =
            "abcXYZ019 _-\"\\\n\t\r/{}[]:,";
        std::string s;
        const std::uint64_t len = rng.next() % 12;
        for (std::uint64_t i = 0; i < len; ++i)
            s += alphabet[rng.next() % (sizeof(alphabet) - 1)];
        return Value(std::move(s));
      }
      case 4: {
        Value arr = Value::makeArray();
        const std::uint64_t len = rng.next() % 5;
        for (std::uint64_t i = 0; i < len; ++i)
            arr.append(randomValue(rng, depth - 1));
        return arr;
      }
      default: {
        Value obj = Value::makeObject();
        const std::uint64_t len = rng.next() % 5;
        for (std::uint64_t i = 0; i < len; ++i) {
            std::string key("k");
            key += std::to_string(i);
            obj.set(key, randomValue(rng, depth - 1));
        }
        return obj;
      }
    }
}

class JsonFuzzTest : public ::testing::TestWithParam<int>
{};

TEST_P(JsonFuzzTest, CompactRoundTripIsIdentity)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    for (int i = 0; i < 50; ++i) {
        const Value original = randomValue(rng, 4);
        const std::string text = original.dump(false);
        const Value reparsed = parse(text);
        ASSERT_EQ(reparsed, original) << text;
        // Idempotent: a second trip produces identical text.
        ASSERT_EQ(reparsed.dump(false), text);
    }
}

TEST_P(JsonFuzzTest, PrettyRoundTripIsIdentity)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    for (int i = 0; i < 50; ++i) {
        const Value original = randomValue(rng, 4);
        const Value reparsed = parse(original.dump(true));
        ASSERT_EQ(reparsed, original);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Range(0, 8));

} // namespace
} // namespace ecochip::json
