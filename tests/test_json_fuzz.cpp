/**
 * @file
 * Randomized JSON property tests, two layers deep:
 *
 *  - **DOM round-trip fuzz**: structurally random documents
 *    generated with the deterministic RNG must survive
 *    dump -> parse -> dump unchanged, compact and pretty.
 *
 *  - **Differential fuzz** of the wire path: random JSON *text*
 *    (random whitespace, `//` comments, escapes, exotic numbers,
 *    multi-byte UTF-8) is fed to the DOM parser and the on-demand
 *    scanner; the two must agree byte-for-byte on every accepted
 *    document and reject the same mutated/truncated inputs. The
 *    streaming writer is held to `dump` byte-identity on every
 *    generated value.
 *
 * Every failure message carries the deterministic seed (and the
 * offending document), so any reported case replays exactly.
 * `ECOCHIP_FUZZ_CASES` scales the per-seed case count (default
 * keeps the default ctest run fast; CI's sanitizer job raises it).
 */

#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/json.h"
#include "json/ondemand.h"
#include "json/stream_writer.h"
#include "support/error.h"
#include "support/rng.h"

#ifndef ECOCHIP_DATA_DIR
#define ECOCHIP_DATA_DIR ""
#endif

namespace ecochip::json {
namespace {

/** Per-seed case count; override with ECOCHIP_FUZZ_CASES. */
int
casesPerSeed(int fallback)
{
    if (const char *env = std::getenv("ECOCHIP_FUZZ_CASES")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return fallback;
}

/** Generate a random JSON value with bounded depth. */
Value
randomValue(Rng &rng, int depth)
{
    const std::uint64_t pick = rng.next() % (depth <= 0 ? 4 : 6);
    switch (pick) {
      case 0:
        return Value(); // null
      case 1:
        return Value(rng.next() % 2 == 0);
      case 2: {
        // Mix of integral, fractional, negative, and extreme
        // magnitudes.
        switch (rng.next() % 4) {
          case 0:
            return Value(static_cast<double>(
                static_cast<std::int64_t>(rng.next() % 2000000) -
                1000000));
          case 1: return Value(rng.uniform(-1e6, 1e6));
          case 2: return Value(rng.uniform(-1e-6, 1e-6));
          default: return Value(rng.uniform(-1e18, 1e18));
        }
      }
      case 3: {
        // Strings with escapes and control characters.
        static const char alphabet[] =
            "abcXYZ019 _-\"\\\n\t\r/{}[]:,";
        std::string s;
        const std::uint64_t len = rng.next() % 12;
        for (std::uint64_t i = 0; i < len; ++i)
            s += alphabet[rng.next() % (sizeof(alphabet) - 1)];
        return Value(std::move(s));
      }
      case 4: {
        Value arr = Value::makeArray();
        const std::uint64_t len = rng.next() % 5;
        for (std::uint64_t i = 0; i < len; ++i)
            arr.append(randomValue(rng, depth - 1));
        return arr;
      }
      default: {
        Value obj = Value::makeObject();
        const std::uint64_t len = rng.next() % 5;
        for (std::uint64_t i = 0; i < len; ++i) {
            std::string key("k");
            key += std::to_string(i);
            obj.set(key, randomValue(rng, depth - 1));
        }
        return obj;
      }
    }
}

// ---------------------------------------------------------------
// Random JSON *text* generation -- exercises the surface syntax
// (whitespace, comments, escape spellings, number spellings) that
// Value-based generation can never produce.
// ---------------------------------------------------------------

/** Random run of legal inter-token whitespace, sometimes with a
 *  `//` line comment (the parser's documented tolerance). */
void
appendWhitespace(Rng &rng, std::string &out)
{
    static const char *kGaps[] = {"", " ", "  ", "\n", "\t",
                                  " \n  ", "\r\n"};
    out += kGaps[rng.next() % 7];
    if (rng.next() % 8 == 0)
        out += "// c o m m e n t\n";
}

/** Random JSON number token, exotic spellings included. */
void
appendNumberText(Rng &rng, std::string &out)
{
    switch (rng.next() % 8) {
      case 0: out += std::to_string(rng.next() % 1000); break;
      case 1:
        out += "-" + std::to_string(rng.next() % 1000);
        break;
      case 2:
        out += std::to_string(rng.next() % 100) + "." +
               std::to_string(rng.next() % 100000);
        break;
      case 3:
        out += std::to_string(rng.next() % 10) + "e" +
               (rng.next() % 2 ? "" : "-") +
               std::to_string(rng.next() % 300);
        break;
      case 4:
        out += std::to_string(rng.next() % 10) + "." +
               std::to_string(rng.next() % 1000) + "E+" +
               std::to_string(rng.next() % 30);
        break;
      case 5: out += "0"; break;
      case 6:
        // Leading zeros: a documented tolerance of this parser.
        out += "00" + std::to_string(rng.next() % 100);
        break;
      default:
        out += "-0." + std::to_string(rng.next() % 1000);
        break;
    }
}

/** Random string token: escapes, \uXXXX, raw multi-byte UTF-8. */
void
appendStringText(Rng &rng, std::string &out)
{
    out += '"';
    const std::uint64_t len = rng.next() % 10;
    for (std::uint64_t i = 0; i < len; ++i) {
        switch (rng.next() % 8) {
          case 0: out += static_cast<char>(
                      'a' + rng.next() % 26);
                  break;
          case 1: out += "\\n"; break;
          case 2: out += "\\\""; break;
          case 3: out += "\\\\"; break;
          case 4: out += "\\/"; break;
          case 5: {
            // BMP \u escape, avoiding the unsupported surrogate
            // range D800-DFFF.
            char buf[8];
            std::uint64_t cp = rng.next() % 0xFFFF;
            if (cp >= 0xD800 && cp <= 0xDFFF)
                cp -= 0x3000;
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(cp));
            out += buf;
            break;
          }
          case 6: out += "\xc3\xa9"; break;      // é (2-byte)
          default: out += "\xe2\x82\xac"; break; // € (3-byte)
        }
    }
    out += '"';
}

/** Random syntactically valid JSON value text. */
void
appendValueText(Rng &rng, std::string &out, int depth)
{
    appendWhitespace(rng, out);
    const std::uint64_t pick = rng.next() % (depth <= 0 ? 4 : 6);
    switch (pick) {
      case 0: out += "null"; break;
      case 1: out += rng.next() % 2 ? "true" : "false"; break;
      case 2: appendNumberText(rng, out); break;
      case 3: appendStringText(rng, out); break;
      case 4: {
        out += '[';
        const std::uint64_t len = rng.next() % 4;
        for (std::uint64_t i = 0; i < len; ++i) {
            if (i)
                out += ',';
            appendValueText(rng, out, depth - 1);
        }
        appendWhitespace(rng, out);
        out += ']';
        break;
      }
      default: {
        out += '{';
        const std::uint64_t len = rng.next() % 4;
        for (std::uint64_t i = 0; i < len; ++i) {
            if (i)
                out += ',';
            appendWhitespace(rng, out);
            out += "\"m" + std::to_string(i) + "\"";
            appendWhitespace(rng, out);
            out += ':';
            appendValueText(rng, out, depth - 1);
        }
        appendWhitespace(rng, out);
        out += '}';
        break;
      }
    }
    appendWhitespace(rng, out);
}

std::string
randomDocumentText(Rng &rng)
{
    std::string out;
    appendValueText(rng, out, 4);
    return out;
}

class JsonFuzzTest : public ::testing::TestWithParam<int>
{};

TEST_P(JsonFuzzTest, CompactRoundTripIsIdentity)
{
    const std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 7919 + 13;
    Rng rng(seed);
    for (int i = 0; i < casesPerSeed(50); ++i) {
        const Value original = randomValue(rng, 4);
        const std::string text = original.dump(false);
        const Value reparsed = parse(text);
        ASSERT_EQ(reparsed, original)
            << "seed " << seed << ": " << text;
        // Idempotent: a second trip produces identical text.
        ASSERT_EQ(reparsed.dump(false), text)
            << "seed " << seed;
    }
}

TEST_P(JsonFuzzTest, PrettyRoundTripIsIdentity)
{
    const std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 104729 + 7;
    Rng rng(seed);
    for (int i = 0; i < casesPerSeed(50); ++i) {
        const Value original = randomValue(rng, 4);
        const Value reparsed = parse(original.dump(true));
        ASSERT_EQ(reparsed, original) << "seed " << seed;
    }
}

// The streaming writer is byte-identical to `dump` on every
// random document, compact and pretty.
TEST_P(JsonFuzzTest, WriterMatchesDumpOnRandomValues)
{
    const std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 31337 + 3;
    Rng rng(seed);
    for (int i = 0; i < casesPerSeed(50); ++i) {
        const Value original = randomValue(rng, 4);
        StreamWriter compact;
        appendValue(compact, original);
        ASSERT_EQ(compact.take(), original.dump(false))
            << "seed " << seed;
        StreamWriter pretty(true);
        appendValue(pretty, original);
        ASSERT_EQ(pretty.take(), original.dump(true))
            << "seed " << seed;
    }
}

// Differential core: on random *text*, the on-demand scanner's
// canonicalization equals parse + dump, byte for byte, in both
// output modes.
TEST_P(JsonFuzzTest, OndemandAgreesWithDomOnRandomText)
{
    const std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 65537 + 101;
    Rng rng(seed);
    for (int i = 0; i < casesPerSeed(50); ++i) {
        const std::string text = randomDocumentText(rng);
        Value dom;
        std::string dom_error;
        try {
            dom = parse(text);
        } catch (const ConfigError &e) {
            dom_error = e.what();
        }
        if (!dom_error.empty()) {
            // The generator should only emit valid documents;
            // surface the seed if that invariant ever breaks.
            FAIL() << "seed " << seed
                   << " generated an unparseable document: "
                   << dom_error << "\n"
                   << text;
        }
        ASSERT_EQ(ondemand::reserialize(text, false),
                  dom.dump(false))
            << "seed " << seed << ": " << text;
        ASSERT_EQ(ondemand::reserialize(text, true),
                  dom.dump(true))
            << "seed " << seed << ": " << text;
    }
}

// Mutation agreement: truncate or corrupt random valid text; the
// two parsers must agree on accept vs reject -- and when they
// reject, on the exact error message (position included).
TEST_P(JsonFuzzTest, OndemandAgreesWithDomOnMutatedText)
{
    const std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 999983 + 29;
    Rng rng(seed);
    for (int i = 0; i < casesPerSeed(50); ++i) {
        std::string text = randomDocumentText(rng);
        switch (rng.next() % 3) {
          case 0: // truncate
            text = text.substr(0, rng.next() %
                                      (text.size() + 1));
            break;
          case 1: { // flip one byte to a random printable
            if (!text.empty())
                text[rng.next() % text.size()] =
                    static_cast<char>(' ' + rng.next() % 95);
            break;
          }
          default: // append garbage
            text += static_cast<char>(' ' + rng.next() % 95);
            break;
        }

        std::string dom_error = "(accepted)";
        std::string dom_dump;
        try {
            dom_dump = parse(text).dump(false);
        } catch (const ConfigError &e) {
            dom_error = e.what();
        }
        std::string scan_error = "(accepted)";
        std::string scan_dump;
        try {
            scan_dump = ondemand::reserialize(text, false);
        } catch (const ConfigError &e) {
            scan_error = e.what();
        }
        ASSERT_EQ(scan_error, dom_error)
            << "seed " << seed << ": " << text;
        ASSERT_EQ(scan_dump, dom_dump)
            << "seed " << seed << ": " << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------
// Number round-tripping property tests
// ---------------------------------------------------------------

/** Bitwise equality -- distinguishes -0.0 from 0.0 and survives
 *  exact denormal comparison. */
std::uint64_t
bits(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

void
expectNumberRoundTrips(double x, const std::string &where)
{
    const std::string text = formatNumber(x);
    // The writer and dump agree on the spelling.
    StreamWriter writer;
    writer.number(x);
    EXPECT_EQ(writer.take(), text) << where;
    EXPECT_EQ(Value(x).dump(false), text) << where;
    // parse(write(x)) == x, bitwise, through both parsers.
    EXPECT_EQ(bits(parse(text).asNumber()), bits(x))
        << where << ": " << text;
    ondemand::Scanner scanner(text);
    EXPECT_EQ(bits(scanner.number()), bits(x))
        << where << ": " << text;
}

TEST(JsonNumbers, CornerValuesRoundTripBitwise)
{
    const double corpus[] = {
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        0.35,
        1.0 / 3.0,
        2.0 / 3.0,
        1e-5,
        -1e-5,
        3.14159265358979323846,
        6.02214076e23,
        1e15,          // integral fast-path boundary
        1e15 - 1.0,
        -1e15,
        9007199254740991.0,  // 2^53 - 1
        9007199254740993.0,  // first non-representable odd
        DBL_MAX,
        -DBL_MAX,
        DBL_MIN,             // smallest normal
        -DBL_MIN,
        5e-324,              // smallest denormal
        -5e-324,
        2.2250738585072011e-308, // near-denormal boundary
        1.7976931348623157e308,
        4.9406564584124654e-324,
        123456789.123456789,
        0.42187500000000006,
    };
    for (double x : corpus)
        expectNumberRoundTrips(
            x, "corner value " + std::to_string(x));
}

TEST(JsonNumbers, RandomDoublesRoundTripBitwise)
{
    Rng rng(0xC0FFEE);
    for (int i = 0; i < casesPerSeed(500); ++i) {
        // Random finite bit patterns cover the full exponent
        // range, denormals included.
        std::uint64_t u = rng.next();
        double x;
        std::memcpy(&x, &u, sizeof x);
        if (!std::isfinite(x))
            continue; // JSON has no NaN/Inf spelling
        expectNumberRoundTrips(x, "random double #" +
                                      std::to_string(i));
    }
}

// Every number appearing in the shipped data/ tree round-trips:
// the values the paper pipeline actually runs on.
void
collectNumbers(const Value &value, std::vector<double> &out)
{
    if (value.isNumber()) {
        out.push_back(value.asNumber());
        return;
    }
    if (value.isArray())
        for (const auto &element : value.asArray())
            collectNumbers(element, out);
    if (value.isObject())
        for (const auto &member : value.members())
            collectNumbers(member.second, out);
}

TEST(JsonNumbers, EveryDataTreeValueRoundTripsBitwise)
{
    const std::string root = ECOCHIP_DATA_DIR;
    if (root.empty() || !std::filesystem::exists(root))
        GTEST_SKIP() << "data directory unavailable";
    std::size_t files = 0;
    std::vector<double> numbers;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".json")
            continue;
        ++files;
        collectNumbers(parseFile(entry.path().string()),
                       numbers);
    }
    ASSERT_GT(files, 0u) << "no JSON files under " << root;
    ASSERT_GT(numbers.size(), 0u);
    for (std::size_t i = 0; i < numbers.size(); ++i)
        expectNumberRoundTrips(numbers[i],
                               "data value #" +
                                   std::to_string(i));
}

} // namespace
} // namespace ecochip::json
