/**
 * @file
 * Tests for mixed 2.5D/3D integration: vertical stack groups on a
 * planar package (HBM-style towers).
 */

#include <gtest/gtest.h>

#include "core/ecochip.h"
#include "core/testcases.h"
#include "package/package_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

class StackGroupTest : public ::testing::Test
{
  protected:
    /** compute die + one tower of `tiers` memory dies. */
    SystemSpec
    makeStacked(int tiers, double mem_die_area = 25.0) const
    {
        SystemSpec system;
        system.name = "stacked";
        system.chiplets.push_back(Chiplet::fromArea(
            "compute", DesignType::Logic, 7.0, 150.0, tech_));
        for (int i = 0; i < tiers; ++i) {
            Chiplet die = Chiplet::fromArea(
                "mem" + std::to_string(i), DesignType::Memory,
                10.0, mem_die_area, tech_);
            die.stackGroup = "tower";
            system.chiplets.push_back(die);
        }
        return system;
    }

    HiResult
    evaluate(const SystemSpec &system,
             PackagingArch arch =
                 PackagingArch::PassiveInterposer) const
    {
        PackageParams pkg;
        pkg.arch = arch;
        return PackageModel(tech_, mfg_, pkg).evaluate(system);
    }

    TechDb tech_;
    ManufacturingModel mfg_{tech_};
};

TEST_F(StackGroupTest, TowerOccupiesOneFootprint)
{
    const SystemSpec stacked = makeStacked(4);
    PackageParams pkg;
    pkg.arch = PackagingArch::PassiveInterposer;
    PackageModel model(tech_, mfg_, pkg);

    const FloorplanResult fp = model.floorplan(stacked);
    // Two boxes: compute + the tower.
    EXPECT_EQ(fp.placements.size(), 2u);
    EXPECT_NO_THROW(fp.placement("tower"));
    EXPECT_NO_THROW(fp.placement("compute"));
    // Tower footprint = one die's area (equal tiers).
    EXPECT_NEAR(fp.placement("tower").widthMm *
                    fp.placement("tower").heightMm,
                25.0, 1e-6);
}

TEST_F(StackGroupTest, StackingShrinksThePackage)
{
    const SystemSpec stacked = makeStacked(4);
    SystemSpec planar = stacked;
    for (auto &chiplet : planar.chiplets)
        chiplet.stackGroup.clear();

    const HiResult hi_stacked = evaluate(stacked);
    const HiResult hi_planar = evaluate(planar);
    EXPECT_LT(hi_stacked.packageAreaMm2,
              hi_planar.packageAreaMm2);
}

TEST_F(StackGroupTest, StackBondsAreChargedAndYieldCompounds)
{
    const HiResult hi = evaluate(makeStacked(4));
    EXPECT_GT(hi.stackBondCo2Kg, 0.0);
    EXPECT_GT(hi.bondCount, 0.0);
    EXPECT_LT(hi.packageYield, 1.0);

    // More tiers -> more bond events -> more bond carbon.
    const HiResult taller = evaluate(makeStacked(8));
    EXPECT_GT(taller.stackBondCo2Kg, hi.stackBondCo2Kg);
}

TEST_F(StackGroupTest, WorksOnEveryPlanarArchitecture)
{
    for (PackagingArch arch :
         {PackagingArch::RdlFanout, PackagingArch::SiliconBridge,
          PackagingArch::PassiveInterposer,
          PackagingArch::ActiveInterposer}) {
        const HiResult hi = evaluate(makeStacked(2), arch);
        EXPECT_GT(hi.stackBondCo2Kg, 0.0) << toString(arch);
        EXPECT_GT(hi.packageCo2Kg, hi.stackBondCo2Kg)
            << toString(arch);
    }
}

TEST_F(StackGroupTest, SingleTierGroupRejected)
{
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "compute", DesignType::Logic, 7.0, 100.0, tech_));
    Chiplet lonely = Chiplet::fromArea(
        "mem", DesignType::Memory, 10.0, 25.0, tech_);
    lonely.stackGroup = "tower";
    system.chiplets.push_back(lonely);
    EXPECT_THROW(evaluate(system), ConfigError);
}

TEST_F(StackGroupTest, Pure3dIgnoresGroups)
{
    // Stack3d treats the whole system as one tower regardless of
    // group labels.
    const HiResult hi =
        evaluate(makeStacked(3), PackagingArch::Stack3d);
    EXPECT_GT(hi.stackBondCo2Kg, 0.0);
    EXPECT_DOUBLE_EQ(hi.whitespaceAreaMm2, 0.0);
}

TEST_F(StackGroupTest, Ga102HbmTestcaseShape)
{
    const SystemSpec hbm = testcases::ga102Hbm(tech_, 2, 4);
    EXPECT_EQ(hbm.chiplets.size(), 10u); // digital+analog+8 dies
    // Memory content preserved vs. the 3-chiplet split.
    const SystemSpec three =
        testcases::ga102ThreeChiplet(tech_, 7.0, 10.0, 14.0);
    EXPECT_NEAR(hbm.totalTransistorsMtr(),
                three.totalTransistorsMtr(), 1e-6);
    // One fresh memory-die design, rest reused.
    int fresh_mem = 0;
    for (const auto &chiplet : hbm.chiplets)
        if (!chiplet.stackGroup.empty() && !chiplet.reused)
            ++fresh_mem;
    EXPECT_EQ(fresh_mem, 1);
    EXPECT_THROW(testcases::ga102Hbm(tech_, 0, 4), ConfigError);
    EXPECT_THROW(testcases::ga102Hbm(tech_, 2, 1), ConfigError);
}

TEST_F(StackGroupTest, Ga102HbmEndToEnd)
{
    EcoChipConfig config;
    config.package.arch = PackagingArch::PassiveInterposer;
    config.operating = testcases::ga102Operating();
    EcoChip estimator(config);

    const CarbonReport hbm = estimator.estimate(
        testcases::ga102Hbm(estimator.tech(), 2, 4));
    const CarbonReport planar = estimator.estimate(
        testcases::ga102ThreeChiplet(estimator.tech(), 7.0, 10.0,
                                     14.0));
    EXPECT_GT(hbm.hi.stackBondCo2Kg, 0.0);
    // The HBM package is smaller in 2D.
    EXPECT_LT(hbm.hi.packageAreaMm2, planar.hi.packageAreaMm2);
    // Smaller memory dies also yield better -> mfg carbon of the
    // HBM config does not exceed the planar split's.
    EXPECT_LE(hbm.mfgCo2Kg, planar.mfgCo2Kg + 1e-9);
}

} // namespace
} // namespace ecochip
