/**
 * @file
 * Tests for the generative scenario spaces and the design-space
 * search driver (src/search/): odometer expansion and derived
 * names, the axis transforms, registry resolution of derived
 * names, Pareto frontier properties, the exhaustive ==
 * hand-expanded-batch identity, climber seed determinism across
 * engine thread counts, and the search_io wire format.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "engine/analysis_engine.h"
#include "io/batch_report_io.h"
#include "io/search_io.h"
#include "json/json.h"
#include "search/pareto.h"
#include "search/scenario_space.h"
#include "search/search_driver.h"
#include "session/scenario_registry.h"
#include "support/error.h"

namespace ecochip {
namespace {

/** what() of a ConfigError thrown by @p fn ("" = no throw). */
template <typename Fn>
std::string
configErrorOf(Fn &&fn)
{
    try {
        fn();
    } catch (const ConfigError &e) {
        return e.what();
    }
    return "";
}

/** A 3-die accelerator catalog with one generator over
 *  (node x split x packaging x lifetime). */
json::Value
pcaCatalog()
{
    return json::parse(R"({
        "generators": [{
            "name": "pca",
            "description": "PE node/split space",
            "architecture": {
                "name": "FPGA-PCA",
                "packaging": "rdl_fanout",
                "chiplets": [
                    {"name": "pe-array", "type": "logic",
                     "node_nm": 7, "area_mm2": 140.0},
                    {"name": "bram", "type": "memory",
                     "node_nm": 10, "area_mm2": 90.0},
                    {"name": "io-xcvr", "type": "io",
                     "node_nm": 14, "area_mm2": 70.0,
                     "reused": true}
                ]
            },
            "operational": {
                "lifetime_years": 3, "duty_cycle": 0.35,
                "avg_power_w": 60.0,
                "intensity_g_per_kwh": 700
            },
            "axes": [
                {"axis": "node_nm", "name": "pe_node",
                 "chiplet": "pe-array", "values": [5, 7]},
                {"axis": "chiplet_count", "name": "pe_split",
                 "chiplet": "pe-array", "values": [1, 4]},
                {"axis": "packaging",
                 "values": ["rdl_fanout", "silicon_bridge"]},
                {"axis": "lifetime_years", "values": [2, 4]}
            ]
        }]
    })");
}

/** A stacked-memory catalog exercising the stack_count axis. */
json::Value
hbmCatalog()
{
    return json::parse(R"({
        "generators": [{
            "name": "hbm-space",
            "architecture": {
                "name": "HBM-HOST",
                "packaging": "passive_interposer",
                "chiplets": [
                    {"name": "compute", "type": "logic",
                     "node_nm": 7, "area_mm2": 150.0},
                    {"name": "hbm0-dram0", "type": "memory",
                     "node_nm": 10, "area_mm2": 60.0,
                     "reused": true, "stack_group": "hbm0"},
                    {"name": "hbm0-dram1", "type": "memory",
                     "node_nm": 10, "area_mm2": 60.0,
                     "reused": true, "stack_group": "hbm0"}
                ]
            },
            "axes": [
                {"axis": "stack_count", "name": "towers",
                 "group": "hbm", "values": [0, 1, 3]}
            ]
        }]
    })");
}

ScenarioSpace
pcaSpace()
{
    ScenarioRegistry registry;
    registry.loadJson(pcaCatalog(), "catalog.json", ".");
    return ScenarioSpace(registry.generator("pca"));
}

class ScenarioSpaceTest : public ::testing::Test
{
  protected:
    ScenarioSpace space_ = pcaSpace();
    TechDb tech_;
};

TEST_F(ScenarioSpaceTest, ExpansionSizeAndOdometerOrder)
{
    EXPECT_EQ(space_.axisCount(), 4u);
    EXPECT_EQ(space_.size(), 16u); // 2 * 2 * 2 * 2

    // Last axis varies fastest.
    EXPECT_EQ(space_.nameAt(0),
              "pca/pe_node=5/pe_split=1/packaging=rdl_fanout/"
              "lifetime_years=2");
    EXPECT_EQ(space_.nameAt(1),
              "pca/pe_node=5/pe_split=1/packaging=rdl_fanout/"
              "lifetime_years=4");
    EXPECT_EQ(space_.nameAt(space_.size() - 1),
              "pca/pe_node=7/pe_split=4/"
              "packaging=silicon_bridge/lifetime_years=4");
}

TEST_F(ScenarioSpaceTest, FlatIndexRoundTrip)
{
    for (std::size_t flat = 0; flat < space_.size(); ++flat) {
        const auto indices = space_.indicesAt(flat);
        ASSERT_EQ(indices.size(), space_.axisCount());
        EXPECT_EQ(space_.flatIndex(indices), flat);
        EXPECT_EQ(space_.nameAt(indices), space_.nameAt(flat));
    }
}

TEST_F(ScenarioSpaceTest, ParseNameRoundTripAndStrictness)
{
    for (std::size_t flat = 0; flat < space_.size(); ++flat) {
        const auto parsed = space_.parseName(space_.nameAt(flat));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, space_.indicesAt(flat));
    }

    // Only the exact nameAt spelling resolves.
    EXPECT_FALSE(space_.parseName("other/pe_node=5"));
    EXPECT_FALSE(space_.parseName("pca"));
    EXPECT_FALSE(space_.parseName("pca/pe_node=5"));
    EXPECT_FALSE(space_.parseName(
        "pca/pe_split=1/pe_node=5/packaging=rdl_fanout/"
        "lifetime_years=2")); // reordered axes
    EXPECT_FALSE(space_.parseName(
        "pca/pe_node=5.0/pe_split=1/packaging=rdl_fanout/"
        "lifetime_years=2")); // non-canonical number spelling
    EXPECT_FALSE(space_.parseName(
        "pca/pe_node=6/pe_split=1/packaging=rdl_fanout/"
        "lifetime_years=2")); // value not a declared candidate
    EXPECT_FALSE(space_.parseName(
        space_.nameAt(0) + "/extra=1"));
}

TEST_F(ScenarioSpaceTest, NodeAxisRetargetsKeepingContent)
{
    // pe_node=5 vs pe_node=7, other axes at index 0.
    const DesignBundle at5 =
        space_.instantiate({0, 0, 0, 0}, tech_);
    const DesignBundle at7 =
        space_.instantiate({1, 0, 0, 0}, tech_);

    const auto find = [](const DesignBundle &b,
                         const std::string &name) {
        const auto it = std::find_if(
            b.system.chiplets.begin(), b.system.chiplets.end(),
            [&](const Chiplet &c) { return c.name == name; });
        EXPECT_NE(it, b.system.chiplets.end());
        return *it;
    };

    const Chiplet pe5 = find(at5, "pe-array");
    const Chiplet pe7 = find(at7, "pe-array");
    EXPECT_DOUBLE_EQ(pe5.nodeNm, 5.0);
    EXPECT_DOUBLE_EQ(pe7.nodeNm, 7.0);
    // Retarget keeps transistor content; area re-derives.
    EXPECT_DOUBLE_EQ(pe5.transistorsMtr, pe7.transistorsMtr);
    EXPECT_LT(pe5.areaMm2(tech_), pe7.areaMm2(tech_));
    // Untargeted chiplets are untouched.
    EXPECT_DOUBLE_EQ(find(at5, "bram").nodeNm, 10.0);
    EXPECT_DOUBLE_EQ(find(at5, "io-xcvr").nodeNm, 14.0);

    // The system is stamped with the derived point name.
    EXPECT_EQ(at5.system.name, space_.nameAt({0, 0, 0, 0}));
}

TEST_F(ScenarioSpaceTest, ChipletSplitMakesReusedTwins)
{
    const DesignBundle whole =
        space_.instantiate({1, 0, 0, 0}, tech_); // pe_split=1
    const DesignBundle split =
        space_.instantiate({1, 1, 0, 0}, tech_); // pe_split=4

    EXPECT_EQ(whole.system.chiplets.size(), 3u);
    ASSERT_EQ(split.system.chiplets.size(), 6u);

    double total = 0.0;
    int reused = 0;
    for (int s = 0; s < 4; ++s) {
        const Chiplet &slice =
            split.system.chiplets[static_cast<std::size_t>(s)];
        EXPECT_EQ(slice.name,
                  "pe-array" + std::to_string(s));
        total += slice.transistorsMtr;
        reused += slice.reused ? 1 : 0;
    }
    // Content divided evenly; twins after the first reused.
    EXPECT_NEAR(total,
                whole.system.chiplets[0].transistorsMtr, 1e-9);
    EXPECT_EQ(reused, 3);
    // Packaging axis landed too.
    EXPECT_EQ(split.config.package.arch,
              PackagingArch::RdlFanout);
}

TEST(StackAxisTest, ReplicationAndTrimRenameTowers)
{
    ScenarioRegistry registry;
    registry.loadJson(hbmCatalog(), "catalog.json", ".");
    const ScenarioSpace space(registry.generator("hbm-space"));
    const TechDb tech;
    ASSERT_EQ(space.size(), 3u);

    // towers=0: the family is trimmed away.
    const DesignBundle none = space.instantiate({0}, tech);
    EXPECT_EQ(none.system.chiplets.size(), 1u);
    EXPECT_EQ(none.system.chiplets[0].name, "compute");

    // towers=1: exactly the exemplar tower.
    const DesignBundle one = space.instantiate({1}, tech);
    EXPECT_EQ(one.system.chiplets.size(), 3u);

    // towers=3: clones renamed into their tower group.
    const DesignBundle three = space.instantiate({2}, tech);
    ASSERT_EQ(three.system.chiplets.size(), 7u);
    std::vector<std::string> names;
    for (const auto &chiplet : three.system.chiplets)
        names.push_back(chiplet.name);
    for (const char *expected :
         {"hbm1-dram0", "hbm1-dram1", "hbm2-dram0",
          "hbm2-dram1"})
        EXPECT_NE(std::find(names.begin(), names.end(),
                            expected),
                  names.end())
            << expected;
    for (const auto &chiplet : three.system.chiplets) {
        if (chiplet.stackGroup == "hbm2") {
            EXPECT_TRUE(chiplet.reused);
        }
    }
}

TEST(ScenarioRegistryGeneratorTest, ResolvesDerivedNames)
{
    ScenarioRegistry registry;
    registry.loadJson(pcaCatalog(), "catalog.json", ".");
    const ScenarioSpace space(registry.generator("pca"));
    const TechDb tech;

    const std::string name = space.nameAt(std::size_t{5});
    EXPECT_TRUE(registry.contains(name));
    EXPECT_FALSE(registry.contains("pca/pe_node=6"));

    const DesignBundle bundle = registry.instantiate(name, tech);
    EXPECT_EQ(bundle.system.name, name);

    // Plain-name lookup failures advertise the templates.
    const std::string message = configErrorOf(
        [&] { (void)registry.get("nope"); });
    EXPECT_NE(message.find("generator templates: pca/..."),
              std::string::npos)
        << message;
    const std::string unknown = configErrorOf(
        [&] { (void)registry.generator("nope"); });
    EXPECT_NE(unknown.find("unknown generator \"nope\""),
              std::string::npos)
        << unknown;
}

TEST(ScenarioRegistryGeneratorTest,
     AxisValidationNamesGeneratorAndAxis)
{
    const auto load = [](const char *axes_json) {
        json::Value doc = json::parse(std::string(R"({
            "generators": [{
                "name": "g",
                "architecture": {
                    "name": "sys",
                    "chiplets": [{"name": "die",
                                  "type": "logic",
                                  "node_nm": 7,
                                  "area_mm2": 50.0}]
                },
                "axes": )") + axes_json + "}]}");
        ScenarioRegistry registry;
        registry.loadJson(doc, "cat.json", ".");
    };

    // Empty axis: file, generator, and axis all named.
    const std::string empty = configErrorOf([&] {
        load(R"([{"axis": "node_nm", "values": []}])");
    });
    EXPECT_NE(empty.find("cat.json"), std::string::npos)
        << empty;
    EXPECT_NE(empty.find("generator \"g\""), std::string::npos)
        << empty;
    EXPECT_NE(empty.find("axis \"node_nm\""), std::string::npos)
        << empty;
    EXPECT_NE(
        empty.find("empty axis (needs at least one value)"),
        std::string::npos)
        << empty;

    // Duplicate value, spelled canonically in the message.
    const std::string dup = configErrorOf([&] {
        load(R"([{"axis": "node_nm", "values": [7, 7.0]}])");
    });
    EXPECT_NE(dup.find("generator \"g\""), std::string::npos)
        << dup;
    EXPECT_NE(dup.find("duplicate axis value \"7\""),
              std::string::npos)
        << dup;

    // Unknown packaging spelling is caught at load time.
    const std::string pkg = configErrorOf([&] {
        load(R"([{"axis": "packaging", "values": ["bogus"]}])");
    });
    EXPECT_NE(
        pkg.find("unknown packaging architecture \"bogus\""),
        std::string::npos)
        << pkg;
}

// ------------------------------------------------------- pareto

TEST(ParetoTest, NoDominatedSurvivorAndFullCoverage)
{
    const std::vector<ParetoPoint> points = {
        {"a", {1.0, 9.0}}, {"b", {2.0, 8.0}},
        {"c", {3.0, 7.0}}, {"d", {3.0, 8.0}}, // dominated by c
        {"e", {9.0, 1.0}}, {"f", {9.0, 9.0}}, // dominated
        {"g", {0.5, 9.5}},
    };
    const auto frontier = paretoFrontier(points);

    const auto dominates = [&](const ParetoPoint &p,
                               const ParetoPoint &q) {
        bool better = false;
        for (std::size_t k = 0; k < p.objectives.size(); ++k) {
            if (p.objectives[k] > q.objectives[k])
                return false;
            if (p.objectives[k] < q.objectives[k])
                better = true;
        }
        return better;
    };

    // No survivor is dominated by any input point...
    for (const std::size_t slot : frontier)
        for (const auto &other : points)
            EXPECT_FALSE(dominates(other, points[slot]));
    // ...and every non-survivor is dominated by some survivor.
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (std::find(frontier.begin(), frontier.end(), i) !=
            frontier.end())
            continue;
        bool covered = false;
        for (const std::size_t slot : frontier)
            covered |= dominates(points[slot], points[i]);
        EXPECT_TRUE(covered) << points[i].name;
    }
    EXPECT_EQ(frontier.size(), 5u);
}

TEST(ParetoTest, PermutationInvariance)
{
    const std::vector<ParetoPoint> points = {
        {"a", {1.0, 9.0}}, {"b", {2.0, 8.0}},
        {"c", {3.0, 7.0}}, {"d", {3.0, 8.0}},
        {"e", {9.0, 1.0}}, {"f", {9.0, 9.0}},
    };
    std::vector<ParetoPoint> shuffled = {
        points[4], points[1], points[5],
        points[0], points[3], points[2]};

    const auto names = [](const std::vector<ParetoPoint> &in,
                          const std::vector<std::size_t> &sel) {
        std::vector<std::string> out;
        for (const std::size_t slot : sel)
            out.push_back(in[slot].name);
        return out;
    };
    // Same survivors in the same (sorted) output order, however
    // the input was permuted.
    EXPECT_EQ(names(points, paretoFrontier(points)),
              names(shuffled, paretoFrontier(shuffled)));
}

TEST(ParetoTest, DeterministicTieOrdering)
{
    // Equal objective vectors: both survive, name-ordered.
    const std::vector<ParetoPoint> points = {
        {"zeta", {1.0, 1.0}},
        {"alpha", {1.0, 1.0}},
        {"mid", {0.5, 2.0}},
    };
    const auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 3u);
    // Sorted by objectives first, then name.
    EXPECT_EQ(points[frontier[0]].name, "mid");
    EXPECT_EQ(points[frontier[1]].name, "alpha");
    EXPECT_EQ(points[frontier[2]].name, "zeta");

    EXPECT_TRUE(paretoFrontier({}).empty());
}

// ------------------------------------------------------- driver

SearchSpec
pcaSearchSpec(StrategyKind kind)
{
    SearchSpec spec;
    spec.generator = "pca";
    spec.strategy.kind = kind;
    spec.strategy.seed = 7;
    spec.strategy.restarts = 3;
    spec.strategy.steps = 40;
    spec.batchSize = 5; // deliberately not a divisor of 16
    spec.objectives.push_back(
        {SearchMetric::EmbodiedKg, false, 1.0});
    spec.constraints.push_back(
        {SearchMetric::CostUsd, std::nullopt, 1000.0});
    return spec;
}

SearchDriver
pcaDriver(int threads)
{
    EngineOptions options;
    options.threads = threads;
    options.registry.loadJson(pcaCatalog(), "catalog.json",
                              ".");
    return SearchDriver(std::move(options));
}

TEST(SearchDriverTest, ExhaustiveMatchesHandExpandedBatch)
{
    const SearchSpec spec =
        pcaSearchSpec(StrategyKind::Exhaustive);

    SearchDriver driver = pcaDriver(4);
    const SearchResult result = driver.run(spec);

    // The same registry, engine config, and request list by
    // hand.
    EngineOptions options;
    options.threads = 4;
    options.registry.loadJson(pcaCatalog(), "catalog.json",
                              ".");
    const ScenarioSpace space(
        options.registry.generator("pca"));
    const auto requests = SearchDriver::expand(spec, space);
    AnalysisEngine engine(std::move(options));
    const BatchReport by_hand = engine.runBatch(requests);

    // Byte-identity through the report serializer -- the
    // search_equivalence CTest locks the same property through
    // files and `cmp`.
    EXPECT_EQ(batchReportToJson(result.report).dump(true),
              batchReportToJson(by_hand).dump(true));

    // Exhaustive covers the whole space in odometer order.
    ASSERT_EQ(result.evaluated.size(), space.size());
    for (std::size_t flat = 0; flat < space.size(); ++flat)
        EXPECT_EQ(result.evaluated[flat].flat, flat);
    EXPECT_EQ(result.spaceSize, space.size());
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.evaluated[*result.best].feasible);
    EXPECT_FALSE(result.frontier.empty());
}

TEST(SearchDriverTest, ClimbersAreSeedDeterministicAcrossThreads)
{
    for (const StrategyKind kind :
         {StrategyKind::Greedy, StrategyKind::Annealing}) {
        const SearchSpec spec = pcaSearchSpec(kind);
        std::vector<std::string> dumps;
        for (const int threads : {1, 4, 8}) {
            SearchDriver driver = pcaDriver(threads);
            dumps.push_back(
                searchResultToJson(driver.run(spec))
                    .dump(true));
        }
        EXPECT_EQ(dumps[0], dumps[1]) << toString(kind);
        EXPECT_EQ(dumps[0], dumps[2]) << toString(kind);
    }
}

TEST(SearchDriverTest, ConstraintsGateFeasibilityAndBest)
{
    SearchSpec spec = pcaSearchSpec(StrategyKind::Exhaustive);
    // Tight area cap: split points (4 small dies ~ same silicon)
    // stay, but nothing is pruned by cost; pick a bound between
    // the observed extremes so both classes exist.
    spec.constraints.clear();
    spec.constraints.push_back(
        {SearchMetric::AreaMm2, std::nullopt, 280.0});

    SearchDriver driver = pcaDriver(2);
    const SearchResult result = driver.run(spec);

    std::size_t feasible = 0;
    for (const auto &point : result.evaluated) {
        EXPECT_TRUE(point.ok);
        if (point.feasible) {
            ++feasible;
            EXPECT_TRUE(std::isfinite(point.score));
        } else {
            EXPECT_TRUE(std::isinf(point.score));
        }
    }
    ASSERT_GT(feasible, 0u);
    ASSERT_LT(feasible, result.evaluated.size());
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.evaluated[*result.best].feasible);
    // The frontier only admits feasible points.
    for (const std::size_t slot : result.frontier)
        EXPECT_TRUE(result.evaluated[slot].feasible);
}

TEST(SearchDriverTest, ValidateRejectsBrokenSpecs)
{
    const SearchSpec good =
        pcaSearchSpec(StrategyKind::Exhaustive);
    EXPECT_NO_THROW(SearchDriver::validate(good));

    SearchSpec spec = good;
    spec.objectives.clear();
    EXPECT_THROW(SearchDriver::validate(spec), ConfigError);

    spec = good;
    spec.objectives[0].weight = 0.0;
    EXPECT_THROW(SearchDriver::validate(spec), ConfigError);

    spec = good;
    spec.batchSize = 0;
    EXPECT_THROW(SearchDriver::validate(spec), ConfigError);

    spec = good;
    spec.strategy.restarts = 0;
    EXPECT_THROW(SearchDriver::validate(spec), ConfigError);

    spec = good;
    spec.constraints.push_back(
        {SearchMetric::AreaMm2, 10.0, 5.0}); // min > max
    EXPECT_THROW(SearchDriver::validate(spec), ConfigError);

    spec = good;
    spec.generator = "unknown-generator";
    SearchDriver driver = pcaDriver(1);
    EXPECT_THROW((void)driver.run(spec), ConfigError);
}

// ----------------------------------------------------- wire fmt

TEST(SearchIoTest, SpecRoundTripsLosslessly)
{
    SearchSpec spec;
    spec.generator = "pca";
    spec.catalog = "catalog.json";
    spec.strategy.kind = StrategyKind::Annealing;
    spec.strategy.seed = 99;
    spec.strategy.restarts = 2;
    spec.strategy.steps = 17;
    spec.strategy.initialTemp = 2.5;
    spec.strategy.cooling = 0.9;
    spec.objectives.push_back(
        {SearchMetric::TotalKg, false, 1.0});
    spec.objectives.push_back(
        {SearchMetric::PerfProxy, true, 0.25});
    spec.constraints.push_back(
        {SearchMetric::CostUsd, 10.0, 500.0});
    spec.batchSize = 32;

    const SearchSpec back = searchSpecFromJson(
        searchSpecToJson(spec), "round.json");
    EXPECT_EQ(back, spec);
}

TEST(SearchIoTest, RejectsUnknownKeysNamingFileAndKey)
{
    json::Value doc = searchSpecToJson(
        pcaSearchSpec(StrategyKind::Exhaustive));
    doc.set("bogus_knob", 1.0);
    const std::string message = configErrorOf([&] {
        (void)searchSpecFromJson(doc, "spec.json");
    });
    EXPECT_NE(message.find("spec.json"), std::string::npos)
        << message;
    EXPECT_NE(message.find("bogus_knob"), std::string::npos)
        << message;

    // Unknown metric spellings list the accepted ones.
    const json::Value bad = json::parse(R"({
        "generator": "pca",
        "objectives": [{"metric": "carbon"}]
    })");
    const std::string metric = configErrorOf([&] {
        (void)searchSpecFromJson(bad, "spec.json");
    });
    EXPECT_NE(metric.find("embodied_kg"), std::string::npos)
        << metric;
}

TEST(SearchIoTest, ResultDocumentOmitsNonFiniteScores)
{
    SearchSpec spec = pcaSearchSpec(StrategyKind::Exhaustive);
    spec.constraints.clear();
    spec.constraints.push_back(
        {SearchMetric::AreaMm2, std::nullopt, 280.0});

    SearchDriver driver = pcaDriver(2);
    const json::Value doc =
        searchResultToJson(driver.run(spec));

    EXPECT_EQ(doc.at("generator").asString(), "pca");
    EXPECT_EQ(doc.at("strategy").asString(), "exhaustive");
    EXPECT_EQ(static_cast<std::size_t>(
                  doc.at("space_size").asInteger()),
              std::size_t{16});
    EXPECT_TRUE(doc.contains("best"));
    EXPECT_TRUE(doc.contains("frontier"));

    bool saw_infeasible = false;
    for (const auto &point : doc.at("points").asArray()) {
        if (point.at("feasible").asBoolean()) {
            EXPECT_TRUE(point.contains("score"));
        } else {
            saw_infeasible = true;
            EXPECT_FALSE(point.contains("score"));
        }
        // The document (and so the whole result) stays
        // parseable JSON even with infeasible points.
        EXPECT_NO_THROW(json::parse(point.dump(false)));
    }
    EXPECT_TRUE(saw_infeasible);
}

} // namespace
} // namespace ecochip
