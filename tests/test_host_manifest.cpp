/**
 * @file
 * Tests for the `hosts.json` host-manifest wire format
 * (`io/host_manifest_io.h`): JSON round-trips, unknown-key
 * rejection naming file+key (the `config_loader` contract),
 * duplicate-host / zero-slot validation, and command-template
 * placeholder validation/expansion.
 */

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "io/host_manifest_io.h"
#include "support/error.h"

#ifndef ECOCHIP_DATA_DIR
#define ECOCHIP_DATA_DIR ""
#endif

namespace ecochip {
namespace {

TEST(HostManifest, RoundTripsThroughJson)
{
    HostManifest manifest;
    manifest.hosts.push_back({"alpha", 2, ""});
    manifest.hosts.push_back(
        {"node-a", 8,
         "ssh {host} eco_chip --shard_worker {sub_batch} "
         "--json {report} --engine_threads {threads} "
         "{scenarios_args}"});
    // isLocal() is derived, not stored.
    EXPECT_TRUE(manifest.hosts[0].isLocal());
    EXPECT_FALSE(manifest.hosts[1].isLocal());
    EXPECT_EQ(manifest.totalSlots(), 10);

    const json::Value doc = hostManifestToJson(manifest);
    const HostManifest parsed = hostManifestFromJson(
        json::parse(doc.dump(true)), "round-trip");
    ASSERT_EQ(parsed.hosts.size(), manifest.hosts.size());
    for (std::size_t i = 0; i < manifest.hosts.size(); ++i) {
        EXPECT_EQ(parsed.hosts[i].name,
                  manifest.hosts[i].name);
        EXPECT_EQ(parsed.hosts[i].slots,
                  manifest.hosts[i].slots);
        EXPECT_EQ(parsed.hosts[i].command,
                  manifest.hosts[i].command);
    }
}

TEST(HostManifest, SlotsDefaultToOne)
{
    const HostManifest manifest = hostManifestFromJson(
        json::parse(R"({"hosts": [{"name": "solo"}]})"));
    ASSERT_EQ(manifest.hosts.size(), 1u);
    EXPECT_EQ(manifest.hosts[0].slots, 1);
    EXPECT_TRUE(manifest.hosts[0].isLocal());
    EXPECT_EQ(manifest.totalSlots(), 1);
}

TEST(HostManifest, RejectsUnknownKeysNamingFileAndKey)
{
    // Top level.
    try {
        hostManifestFromJson(
            json::parse(R"({"hosts": [], "hoots": 1})"),
            "cluster.json");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cluster.json"), std::string::npos)
            << what;
        EXPECT_NE(what.find("\"hoots\""), std::string::npos)
            << what;
    }

    // Per-host entry: a typo'd "slot" must not load as the
    // default.
    try {
        hostManifestFromJson(
            json::parse(
                R"({"hosts": [{"name": "a", "slot": 4}]})"),
            "cluster.json");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cluster.json"), std::string::npos)
            << what;
        EXPECT_NE(what.find("\"slot\""), std::string::npos)
            << what;
    }
}

TEST(HostManifest, RejectsDuplicateHosts)
{
    try {
        hostManifestFromJson(
            json::parse(R"({"hosts": [
                {"name": "a", "slots": 1},
                {"name": "b"},
                {"name": "a", "slots": 2}
            ]})"),
            "dup.json");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("duplicate host"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("\"a\""), std::string::npos)
            << what;
    }
}

TEST(HostManifest, RejectsInvalidSlotCounts)
{
    // Zero slots: a host that can run nothing is a manifest
    // typo, not a way to drain a host.
    EXPECT_THROW(hostManifestFromJson(json::parse(
                     R"({"hosts": [{"name": "a",
                                    "slots": 0}]})")),
                 ConfigError);
    EXPECT_THROW(hostManifestFromJson(json::parse(
                     R"({"hosts": [{"name": "a",
                                    "slots": -2}]})")),
                 ConfigError);
    // Non-integral counts must not silently truncate.
    EXPECT_THROW(hostManifestFromJson(json::parse(
                     R"({"hosts": [{"name": "a",
                                    "slots": 1.5}]})")),
                 ConfigError);
}

TEST(HostManifest, RejectsStructuralMistakes)
{
    EXPECT_THROW(hostManifestFromJson(json::parse("[]")),
                 ConfigError);
    EXPECT_THROW(hostManifestFromJson(json::parse("{}")),
                 ConfigError);
    EXPECT_THROW(
        hostManifestFromJson(json::parse(R"({"hosts": []})")),
        ConfigError);
    EXPECT_THROW(hostManifestFromJson(
                     json::parse(R"({"hosts": [{}]})")),
                 ConfigError);
    EXPECT_THROW(hostManifestFromJson(json::parse(
                     R"({"hosts": [{"name": ""}]})")),
                 ConfigError);
    EXPECT_THROW(hostManifestFromJson(json::parse(
                     R"({"hosts": [{"name": "a",
                                    "command": ""}]})")),
                 ConfigError);
}

TEST(HostManifest, ValidatesCommandTemplatePlaceholders)
{
    // A typo'd placeholder fails at load time, naming it.
    try {
        hostManifestFromJson(
            json::parse(R"({"hosts": [
                {"name": "a",
                 "command": "ssh {hostt} run {sub_batch}"}
            ]})"),
            "cluster.json");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("{hostt}"), std::string::npos)
            << what;
        EXPECT_NE(what.find("cluster.json"), std::string::npos)
            << what;
    }

    // Unterminated brace.
    EXPECT_THROW(
        validateCommandTemplate("ssh {host", "t"),
        ConfigError);

    // Every documented placeholder passes.
    validateCommandTemplate(
        "ssh {host} {worker} --shard_worker {sub_batch} "
        "--json {report} --engine_threads {threads} "
        "{scenarios_args}",
        "t");
}

TEST(HostManifest, ExpandsCommandTemplates)
{
    const std::string expanded = expandCommandTemplate(
        "ssh {host} run {sub_batch} -o {report}",
        {{"host", "node-a"},
         {"sub_batch", "/shared/shard_000.json"},
         {"report", "/shared/shard_000.json.report"}});
    EXPECT_EQ(expanded,
              "ssh node-a run /shared/shard_000.json "
              "-o /shared/shard_000.json.report");

    // A placeholder with no value for this dispatch throws.
    EXPECT_THROW(
        expandCommandTemplate("run {report}",
                              {{"host", "node-a"}}),
        ConfigError);
}

TEST(HostManifest, ShippedManifestsLoadAndValidate)
{
    // Every manifest under data/hosts/ must stay loadable --
    // they are the documented examples.
    const auto dir =
        std::filesystem::path(ECOCHIP_DATA_DIR) / "hosts";
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    std::size_t manifests = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".json")
            continue;
        ++manifests;
        const HostManifest manifest =
            loadHostManifest(entry.path().string());
        EXPECT_FALSE(manifest.hosts.empty()) << entry.path();
        EXPECT_GE(manifest.totalSlots(), 1) << entry.path();
    }
    EXPECT_GE(manifests, 3u);
}

TEST(HostManifest, LoadFileNamesThePathInErrors)
{
    const auto path =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_bad_hosts.json";
    {
        std::ofstream out(path);
        out << R"({"hosts": [{"name": "a", "slotz": 3}]})";
    }
    try {
        loadHostManifest(path.string());
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ecochip_bad_hosts.json"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("\"slotz\""), std::string::npos)
            << what;
    }
    std::filesystem::remove(path);
}

} // namespace
} // namespace ecochip
