/**
 * @file
 * Golden bit-identity tests for the data-oriented batch kernels
 * (`src/kernels/`). The kernels restructure the hot loops of the
 * tech-space sweep, the Monte-Carlo analyzer, and the sensitivity
 * sweep into compile-once/evaluate-many form; their contract is
 * that every number they produce is *byte-identical* to the
 * scalar `EcoChip::estimate()` path. These tests pin that
 * contract against test-local reimplementations of the legacy
 * scalar loops (per-point / per-trial model construction), across
 * every built-in scenario and every packaging architecture.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "analysis/montecarlo.h"
#include "analysis/sensitivity.h"
#include "core/explorer.h"
#include "core/testcases.h"
#include "session/scenario_registry.h"
#include "support/rng.h"

namespace ecochip {
namespace {

// ------------------------------------------------ bit equality

::testing::AssertionResult
bitEqual(const char *a_expr, const char *b_expr, double a, double b)
{
    std::uint64_t a_bits = 0, b_bits = 0;
    std::memcpy(&a_bits, &a, sizeof a);
    std::memcpy(&b_bits, &b, sizeof b);
    if (a_bits == b_bits)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a_expr << " and " << b_expr
           << " differ in bits: " << a << " vs " << b
           << " (delta " << (b - a) << ")";
}

#define EXPECT_BITEQ(a, b) EXPECT_PRED_FORMAT2(bitEqual, a, b)

void
expectReportBitIdentical(const CarbonReport &expected,
                         const CarbonReport &actual)
{
    EXPECT_BITEQ(expected.mfgCo2Kg, actual.mfgCo2Kg);
    EXPECT_BITEQ(expected.designCo2Kg, actual.designCo2Kg);
    EXPECT_BITEQ(expected.nreCo2Kg, actual.nreCo2Kg);
    EXPECT_BITEQ(expected.hi.packageCo2Kg, actual.hi.packageCo2Kg);
    EXPECT_BITEQ(expected.hi.routingCo2Kg, actual.hi.routingCo2Kg);
    EXPECT_BITEQ(expected.hi.packageAreaMm2,
                 actual.hi.packageAreaMm2);
    EXPECT_BITEQ(expected.hi.whitespaceAreaMm2,
                 actual.hi.whitespaceAreaMm2);
    EXPECT_BITEQ(expected.hi.packageYield, actual.hi.packageYield);
    EXPECT_EQ(expected.hi.bridgeCount, actual.hi.bridgeCount);
    EXPECT_BITEQ(expected.hi.bondCount, actual.hi.bondCount);
    EXPECT_BITEQ(expected.hi.stackBondCo2Kg,
                 actual.hi.stackBondCo2Kg);
    EXPECT_BITEQ(expected.hi.commAreaMm2, actual.hi.commAreaMm2);
    EXPECT_BITEQ(expected.hi.nocPowerW, actual.hi.nocPowerW);
    EXPECT_BITEQ(expected.operation.avgPowerW,
                 actual.operation.avgPowerW);
    EXPECT_BITEQ(expected.operation.lifetimeEnergyKwh,
                 actual.operation.lifetimeEnergyKwh);
    EXPECT_BITEQ(expected.operation.co2Kg, actual.operation.co2Kg);
    EXPECT_BITEQ(expected.embodiedCo2Kg(), actual.embodiedCo2Kg());
    EXPECT_BITEQ(expected.totalCo2Kg(), actual.totalCo2Kg());
    ASSERT_EQ(expected.chiplets.size(), actual.chiplets.size());
    for (std::size_t i = 0; i < expected.chiplets.size(); ++i) {
        EXPECT_EQ(expected.chiplets[i].name,
                  actual.chiplets[i].name);
        EXPECT_BITEQ(expected.chiplets[i].nodeNm,
                     actual.chiplets[i].nodeNm);
        EXPECT_BITEQ(expected.chiplets[i].areaMm2,
                     actual.chiplets[i].areaMm2);
        EXPECT_BITEQ(expected.chiplets[i].yield,
                     actual.chiplets[i].yield);
        EXPECT_BITEQ(expected.chiplets[i].mfgCo2Kg,
                     actual.chiplets[i].mfgCo2Kg);
        EXPECT_BITEQ(expected.chiplets[i].designCo2Kg,
                     actual.chiplets[i].designCo2Kg);
    }
}

// ------------------------------------------------ scalar oracles

/**
 * Per-chiplet candidate lists that keep the cross product small:
 * the first two chiplets get two candidates each, the rest keep a
 * single node, so every scenario sweeps at most four points while
 * still exercising per-chiplet lists and mixed-node assignments.
 */
std::vector<std::vector<double>>
smallCandidateGrid(const SystemSpec &system)
{
    std::vector<std::vector<double>> grid;
    for (std::size_t i = 0; i < system.chiplets.size(); ++i) {
        // A monolithic die's blocks must share one node, so its
        // "sweep" collapses to a single assignment.
        if (system.singleDie)
            grid.push_back({10.0});
        else if (i < 2)
            grid.push_back({7.0, 14.0});
        else
            grid.push_back({10.0});
    }
    return grid;
}

/**
 * The legacy sweep loop: cartesian odometer over the candidate
 * lists, one `estimate()` per point on a *fresh* estimator (no
 * shared caches), mirroring the pre-kernel scalar evaluation.
 */
std::vector<ExplorationPoint>
scalarSweep(const EcoChipConfig &config, const TechDb &tech,
            const SystemSpec &system,
            const std::vector<std::vector<double>> &candidates)
{
    std::vector<ExplorationPoint> points;
    std::vector<std::size_t> index(candidates.size(), 0);
    while (true) {
        std::vector<double> assignment;
        assignment.reserve(index.size());
        for (std::size_t i = 0; i < index.size(); ++i)
            assignment.push_back(candidates[i][index[i]]);

        ExplorationPoint point;
        point.nodesNm = assignment;
        point.system = system.withNodes(assignment);
        const EcoChip fresh(config, tech);
        point.report = fresh.estimate(point.system);
        points.push_back(std::move(point));

        std::size_t pos = index.size();
        while (pos > 0) {
            --pos;
            if (++index[pos] < candidates[pos].size())
                break;
            index[pos] = 0;
            if (pos == 0)
                return points;
        }
    }
}

/**
 * The legacy Monte-Carlo trial: draw scales serially from the
 * seed, then rebuild the technology tables and configuration per
 * trial and evaluate on a throwaway estimator. Copied from the
 * pre-kernel analyzer; the batch path must reproduce its sample
 * vectors exactly.
 */
UncertaintyReport
scalarMonteCarlo(const EcoChipConfig &base_config,
                 const TechDb &base_tech,
                 const UncertaintyBands &bands,
                 const SystemSpec &system, int trials,
                 std::uint64_t seed)
{
    struct Scales
    {
        double defectDensity = 1.0;
        double epa = 1.0;
        double intensity = 1.0;
        double designTime = 1.0;
        double dutyCycle = 1.0;
    };

    Rng rng(seed);
    auto scale_band = [&rng](double half_width) {
        return rng.uniform(1.0 - half_width, 1.0 + half_width);
    };
    std::vector<Scales> scales;
    scales.reserve(trials);
    for (int trial = 0; trial < trials; ++trial) {
        Scales s;
        s.defectDensity = scale_band(bands.defectDensity);
        s.epa = scale_band(bands.epa);
        s.intensity = scale_band(bands.intensity);
        s.designTime = scale_band(bands.designTime);
        s.dutyCycle = scale_band(bands.dutyCycle);
        scales.push_back(s);
    }

    std::vector<double> embodied(trials), operational(trials),
        total(trials);
    for (int trial = 0; trial < trials; ++trial) {
        EcoChipConfig config = base_config;
        TechDb tech = base_tech;

        std::vector<std::pair<double, double>> d0_points;
        std::vector<std::pair<double, double>> epa_points;
        for (double node : TechDb::standardNodesNm()) {
            d0_points.emplace_back(
                node, scales[trial].defectDensity *
                          base_tech.defectDensityPerCm2(node));
            epa_points.emplace_back(
                node, scales[trial].epa *
                          base_tech.epaKwhPerCm2(node));
        }
        tech.setDefectDensityTable(PiecewiseLinear(d0_points));
        tech.setEpaTable(PiecewiseLinear(epa_points));

        config.fabIntensityGPerKwh *= scales[trial].intensity;
        config.package.intensityGPerKwh *= scales[trial].intensity;
        config.design.intensityGPerKwh *= scales[trial].intensity;
        config.design.sprHoursPerMgate *= scales[trial].designTime;
        config.operating.dutyCycle =
            std::min(1.0, config.operating.dutyCycle *
                              scales[trial].dutyCycle);

        const EcoChip estimator(std::move(config),
                                std::move(tech));
        const CarbonReport report = estimator.estimate(system);
        embodied[trial] = report.embodiedCo2Kg();
        operational[trial] = report.operation.co2Kg;
        total[trial] = report.totalCo2Kg();
    }
    return UncertaintyReport{SampleStats(std::move(embodied)),
                             SampleStats(std::move(operational)),
                             SampleStats(std::move(total))};
}

void
expectStatsBitIdentical(const SampleStats &expected,
                        const SampleStats &actual)
{
    ASSERT_EQ(expected.count(), actual.count());
    EXPECT_BITEQ(expected.mean(), actual.mean());
    EXPECT_BITEQ(expected.stddev(), actual.stddev());
    EXPECT_BITEQ(expected.min(), actual.min());
    EXPECT_BITEQ(expected.max(), actual.max());
    for (double p : {5.0, 25.0, 50.0, 75.0, 95.0})
        EXPECT_BITEQ(expected.percentile(p),
                     actual.percentile(p));
}

/** Configuration variants covering every packaging architecture. */
std::vector<EcoChipConfig>
architectureConfigs()
{
    std::vector<EcoChipConfig> configs;
    for (PackagingArch arch :
         {PackagingArch::RdlFanout, PackagingArch::SiliconBridge,
          PackagingArch::PassiveInterposer,
          PackagingArch::ActiveInterposer,
          PackagingArch::Stack3d}) {
        EcoChipConfig config;
        config.package.arch = arch;
        config.operating = testcases::ga102Operating();
        configs.push_back(config);
    }
    // NRE extension on top of an interposer package.
    EcoChipConfig nre;
    nre.package.arch = PackagingArch::ActiveInterposer;
    nre.operating = testcases::ga102Operating();
    nre.includeMaskNre = true;
    configs.push_back(nre);
    return configs;
}

// ------------------------------------------------ sweep goldens

TEST(KernelSweepGolden, BitIdenticalAcrossBuiltinScenarios)
{
    const TechDb tech;
    for (const std::string &name :
         ScenarioRegistry::builtin().names()) {
        SCOPED_TRACE("scenario " + name);
        const DesignBundle bundle =
            ScenarioRegistry::builtin().instantiate(name, tech);
        const auto grid =
            smallCandidateGrid(bundle.system);

        const std::vector<ExplorationPoint> expected =
            scalarSweep(bundle.config, tech, bundle.system, grid);

        const EcoChip estimator(bundle.config, tech);
        const TechSpaceExplorer explorer(estimator);
        const std::vector<ExplorationPoint> actual =
            explorer.sweep(bundle.system, grid);

        ASSERT_EQ(expected.size(), actual.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            SCOPED_TRACE("point " + expected[i].label());
            ASSERT_EQ(expected[i].nodesNm, actual[i].nodesNm);
            expectReportBitIdentical(expected[i].report,
                                     actual[i].report);
        }
    }
}

TEST(KernelSweepGolden, BitIdenticalAcrossArchitectures)
{
    const TechDb tech;
    for (const EcoChipConfig &config : architectureConfigs()) {
        SCOPED_TRACE("arch " +
                     std::to_string(static_cast<int>(
                         config.package.arch)) +
                     (config.includeMaskNre ? " +nre" : ""));
        const SystemSpec system = testcases::ga102ThreeChiplet(
            tech, 7.0, 10.0, 14.0);
        const std::vector<std::vector<double>> grid(
            system.chiplets.size(),
            std::vector<double>{7.0, 14.0});

        const std::vector<ExplorationPoint> expected =
            scalarSweep(config, tech, system, grid);

        const EcoChip estimator(config, tech);
        const std::vector<ExplorationPoint> actual =
            TechSpaceExplorer(estimator).sweep(system, grid);

        ASSERT_EQ(expected.size(), actual.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            SCOPED_TRACE("point " + expected[i].label());
            expectReportBitIdentical(expected[i].report,
                                     actual[i].report);
        }
    }
}

TEST(KernelSweepGolden, StackedGroupsBitIdentical)
{
    // Partial 3D stacking (stack groups on a 2.5D base) walks the
    // group-bond branch of the kernel.
    const TechDb tech;
    EcoChipConfig config;
    config.package.arch = PackagingArch::PassiveInterposer;
    config.operating = testcases::hbmAcceleratorOperating();
    const SystemSpec system = testcases::hbmAccelerator(tech);

    const auto grid = smallCandidateGrid(system);
    const std::vector<ExplorationPoint> expected =
        scalarSweep(config, tech, system, grid);

    const EcoChip estimator(config, tech);
    const std::vector<ExplorationPoint> actual =
        TechSpaceExplorer(estimator).sweep(system, grid);

    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectReportBitIdentical(expected[i].report,
                                 actual[i].report);
}

TEST(KernelSweepGolden, RepeatedSweepServedFromSharedCache)
{
    // Second sweep on the same estimator must hit the shared
    // report cache and reproduce the first run exactly.
    const TechDb tech;
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    config.operating = testcases::ga102Operating();
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);

    const EcoChip estimator(config, tech);
    const TechSpaceExplorer explorer(estimator);
    const std::vector<double> nodes = {7.0, 10.0, 14.0};
    const auto first = explorer.sweep(system, nodes);
    const auto second = explorer.sweep(system, nodes);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectReportBitIdentical(first[i].report,
                                 second[i].report);
}

TEST(KernelSweepGolden, SweptPointMatchesDirectEstimate)
{
    // A point pulled out of the sweep equals a direct scalar
    // estimate() of the same assignment on the same estimator.
    const TechDb tech;
    EcoChipConfig config;
    config.package.arch = PackagingArch::SiliconBridge;
    config.operating = testcases::emrOperating();
    const SystemSpec system = testcases::emrTwoChiplet(tech);

    const EcoChip estimator(config, tech);
    const auto points = TechSpaceExplorer(estimator)
                            .sweep(system, {7.0, 10.0});
    ASSERT_FALSE(points.empty());
    for (const auto &point : points) {
        const CarbonReport direct =
            estimator.estimate(point.system);
        expectReportBitIdentical(direct, point.report);
    }
}

// ------------------------------------------- Monte-Carlo goldens

TEST(KernelMonteCarloGolden, BitIdenticalToScalarTrials)
{
    const TechDb tech;
    const UncertaintyBands bands;
    for (const std::string &name :
         {std::string("ga102"), std::string("server-4die"),
          std::string("hbm-accel")}) {
        SCOPED_TRACE("scenario " + name);
        const DesignBundle bundle =
            ScenarioRegistry::builtin().instantiate(name, tech);

        for (std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
            SCOPED_TRACE("seed " + std::to_string(seed));
            const UncertaintyReport expected = scalarMonteCarlo(
                bundle.config, tech, bands, bundle.system, 16,
                seed);

            const MonteCarloAnalyzer analyzer(bundle.config, tech,
                                              bands);
            const UncertaintyReport actual = analyzer.run(
                bundle.system, 16, seed, Parallelism{1});

            expectStatsBitIdentical(expected.embodied,
                                    actual.embodied);
            expectStatsBitIdentical(expected.operational,
                                    actual.operational);
            expectStatsBitIdentical(expected.total, actual.total);
        }
    }
}

TEST(KernelMonteCarloGolden, ThreadCountNeverChangesTheReport)
{
    const TechDb tech;
    EcoChipConfig config;
    config.package.arch = PackagingArch::ActiveInterposer;
    config.operating = testcases::ga102Operating();
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);

    const MonteCarloAnalyzer analyzer(config, tech);
    const UncertaintyReport serial =
        analyzer.run(system, 24, 42, Parallelism{1});
    for (int threads : {2, 4, 7}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        const UncertaintyReport threaded =
            analyzer.run(system, 24, 42, Parallelism{threads});
        expectStatsBitIdentical(serial.embodied,
                                threaded.embodied);
        expectStatsBitIdentical(serial.operational,
                                threaded.operational);
        expectStatsBitIdentical(serial.total, threaded.total);
    }
}

// ------------------------------------------- sensitivity goldens

TEST(KernelSensitivityGolden, BatchMatchesScalarFallback)
{
    // Clearing every parameter's batch target forces the scalar
    // per-perturbation path; with targets set, the batch kernel
    // runs. Both must produce byte-identical rows.
    const TechDb tech;
    for (const std::string &name :
         {std::string("ga102"), std::string("emr"),
          std::string("hbm-accel")}) {
        SCOPED_TRACE("scenario " + name);
        const DesignBundle bundle =
            ScenarioRegistry::builtin().instantiate(name, tech);
        const SensitivityAnalyzer analyzer(bundle.config, tech);

        const auto batched =
            SensitivityAnalyzer::standardParameters();
        auto scalar = batched;
        for (auto &param : scalar)
            param.target.reset();

        for (CarbonMetric metric :
             {CarbonMetric::Embodied, CarbonMetric::Operational,
              CarbonMetric::Total}) {
            SCOPED_TRACE("metric " + std::to_string(
                                         static_cast<int>(metric)));
            const auto expected = analyzer.analyze(
                bundle.system, scalar, metric, 0.10);
            const auto actual = analyzer.analyze(
                bundle.system, batched, metric, 0.10);
            ASSERT_EQ(expected.size(), actual.size());
            for (std::size_t i = 0; i < expected.size(); ++i) {
                SCOPED_TRACE("parameter " + expected[i].name);
                EXPECT_EQ(expected[i].name, actual[i].name);
                EXPECT_BITEQ(expected[i].baseValue,
                             actual[i].baseValue);
                EXPECT_BITEQ(expected[i].lowValue,
                             actual[i].lowValue);
                EXPECT_BITEQ(expected[i].highValue,
                             actual[i].highValue);
                EXPECT_BITEQ(expected[i].elasticity,
                             actual[i].elasticity);
            }
        }
    }
}

TEST(KernelSensitivityGolden, MixedCustomParametersStillScalar)
{
    // A custom parameter without a batch target sends the whole
    // sweep down the scalar path; rows must match the all-scalar
    // run bit for bit.
    const TechDb tech;
    EcoChipConfig config;
    config.package.arch = PackagingArch::RdlFanout;
    config.operating = testcases::ga102Operating();
    const SystemSpec system =
        testcases::ga102ThreeChiplet(tech, 7.0, 10.0, 14.0);
    const SensitivityAnalyzer analyzer(config, tech);

    auto params = SensitivityAnalyzer::standardParameters();
    params.push_back(
        {"wafer-area intensity (custom)",
         [](EcoChipConfig &cfg, TechDb &, double scale) {
             cfg.fabIntensityGPerKwh *= scale;
         },
         std::nullopt});

    auto all_scalar = params;
    for (auto &param : all_scalar)
        param.target.reset();

    const auto expected = analyzer.analyze(
        system, all_scalar, CarbonMetric::Total, 0.05);
    const auto actual = analyzer.analyze(
        system, params, CarbonMetric::Total, 0.05);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].name, actual[i].name);
        EXPECT_BITEQ(expected[i].lowValue, actual[i].lowValue);
        EXPECT_BITEQ(expected[i].highValue, actual[i].highValue);
        EXPECT_BITEQ(expected[i].elasticity,
                     actual[i].elasticity);
    }
}

} // namespace
} // namespace ecochip
