/**
 * @file
 * Tests for the declarative request API and the async batch
 * engine: JSON round-trips, batch-vs-session bit-equality at any
 * thread count, per-request failure isolation, scenario catalog
 * loading, completion-order streaming, and multi-process
 * sharding (merged shard reports byte-identical to the
 * single-process run).
 */

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "engine/analysis_engine.h"
#include "engine/shard_coordinator.h"
#include "engine/shard_planner.h"
#include "engine/shard_runner.h"
#include "engine/thread_pool.h"
#include "engine/work_queue.h"
#include "io/batch_report_io.h"
#include "io/event_journal_io.h"
#include "io/request_io.h"
#include "io/result_writer.h"
#include "support/error.h"

#ifndef ECOCHIP_DATA_DIR
#define ECOCHIP_DATA_DIR ""
#endif

namespace ecochip {
namespace {

void
expectSameReport(const CarbonReport &expected,
                 const CarbonReport &actual)
{
    EXPECT_EQ(expected.mfgCo2Kg, actual.mfgCo2Kg);
    EXPECT_EQ(expected.designCo2Kg, actual.designCo2Kg);
    EXPECT_EQ(expected.nreCo2Kg, actual.nreCo2Kg);
    EXPECT_EQ(expected.hi.packageCo2Kg, actual.hi.packageCo2Kg);
    EXPECT_EQ(expected.hi.routingCo2Kg, actual.hi.routingCo2Kg);
    EXPECT_EQ(expected.operation.co2Kg, actual.operation.co2Kg);
    EXPECT_EQ(expected.embodiedCo2Kg(), actual.embodiedCo2Kg());
    EXPECT_EQ(expected.totalCo2Kg(), actual.totalCo2Kg());
    ASSERT_EQ(expected.chiplets.size(), actual.chiplets.size());
    for (std::size_t i = 0; i < expected.chiplets.size(); ++i) {
        EXPECT_EQ(expected.chiplets[i].yield,
                  actual.chiplets[i].yield);
        EXPECT_EQ(expected.chiplets[i].mfgCo2Kg,
                  actual.chiplets[i].mfgCo2Kg);
    }
}

// ------------------------------------------------ acceptance

TEST(Engine, BatchOfBuiltinEstimatesMatchesSequentialSessions)
{
    // The acceptance gate: estimates of every builtin scenario
    // through `runBatch` -- with the requests additionally pushed
    // through a JSON round-trip -- are bit-identical to
    // sequential AnalysisSession::estimate() calls, at any
    // engine thread count.
    const auto names = ScenarioRegistry::builtin().names();
    ASSERT_GE(names.size(), 9u);

    std::vector<AnalysisRequest> requests;
    for (const auto &name : names)
        requests.push_back({ScenarioRef::scenario(name),
                            EstimateSpec{}});

    // serialize -> parse -> equal results.
    const json::Value wire = requestsToJson(requests);
    const std::vector<AnalysisRequest> parsed =
        requestsFromJson(json::parse(wire.dump(true)),
                         "round-trip");
    ASSERT_EQ(parsed.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
        EXPECT_TRUE(parsed[i] == requests[i]) << names[i];

    for (int threads : {1, 3, 8}) {
        AnalysisEngine engine(threads);
        const BatchReport report = engine.runBatch(parsed);
        ASSERT_TRUE(report.allOk());
        ASSERT_EQ(report.outcomes.size(), names.size());

        for (std::size_t i = 0; i < names.size(); ++i) {
            const AnalysisResult sequential =
                ScenarioBuilder()
                    .scenario(names[i])
                    .build()
                    .estimate();
            const auto &outcome = report.outcomes[i];
            ASSERT_TRUE(outcome.ok()) << names[i];
            EXPECT_EQ(outcome.request.scenario.value, names[i]);
            ASSERT_TRUE(outcome.result->report.has_value());
            expectSameReport(*sequential.report,
                             *outcome.result->report);
        }
    }
}

TEST(Engine, ThreadCountsAreBitIdenticalForEqualSeeds)
{
    // Every verb kind in one batch; threads=1 and threads=8 must
    // agree bit-for-bit (Monte Carlo seeds included).
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    SweepSpec sweep;
    sweep.nodesNm = {7.0, 10.0, 14.0};
    requests.push_back(
        {ScenarioRef::scenario("ga102"), sweep});
    MonteCarloSpec mc;
    mc.trials = 64;
    mc.seed = 7;
    mc.threads = 2;
    requests.push_back({ScenarioRef::scenario("emr"), mc});
    requests.push_back({ScenarioRef::scenario("a15"),
                        SensitivitySpec{}});
    requests.push_back(
        {ScenarioRef::scenario("hbm-accel"), CostSpec{}});

    AnalysisEngine serial(1);
    AnalysisEngine parallel(8);
    const BatchReport a = serial.runBatch(requests);
    const BatchReport b = parallel.runBatch(requests);
    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());

    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const AnalysisResult &ra = *a.outcomes[i].result;
        const AnalysisResult &rb = *b.outcomes[i].result;
        EXPECT_EQ(ra.kind, rb.kind);
        EXPECT_EQ(ra.scenario, rb.scenario);
        // One serialization path -> byte-equal JSON is the
        // strongest cheap bit-identity check across payloads.
        EXPECT_EQ(resultToJson(ra).dump(true),
                  resultToJson(rb).dump(true))
            << i;
    }
}

// ------------------------------------------------ failure paths

TEST(Engine, FailedRequestNeverTakesDownTheBatch)
{
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    requests.push_back(
        {ScenarioRef::scenario("no-such-scenario"),
         EstimateSpec{}});
    requests.push_back(
        {ScenarioRef::scenario("emr"), EstimateSpec{}});

    AnalysisEngine engine(4);
    const BatchReport report = engine.runBatch(requests);
    ASSERT_EQ(report.outcomes.size(), 3u);
    EXPECT_EQ(report.succeeded(), 2u);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_FALSE(report.allOk());

    EXPECT_TRUE(report.outcomes[0].ok());
    EXPECT_FALSE(report.outcomes[1].ok());
    EXPECT_TRUE(report.outcomes[2].ok());
    // The error names the unknown scenario and the alternatives,
    // exactly as ScenarioBuilder throws it.
    EXPECT_NE(report.outcomes[1].error.find("no-such-scenario"),
              std::string::npos)
        << report.outcomes[1].error;
    EXPECT_NE(report.outcomes[1].error.find("ga102"),
              std::string::npos);
    EXPECT_TRUE(report.outcomes[1].result == std::nullopt);
}

TEST(Engine, SubmitPropagatesExceptionsThroughTheFuture)
{
    AnalysisEngine engine(2);
    auto future = engine.submit(
        {ScenarioRef::designDirectory("/no/such/dir"),
         EstimateSpec{}});
    EXPECT_THROW(future.get(), ConfigError);

    // An invalid spec fails its own future too.
    SweepSpec empty;
    auto bad_spec = engine.submit(
        {ScenarioRef::scenario("ga102"), empty});
    EXPECT_THROW(bad_spec.get(), ConfigError);

    // The engine stays usable afterwards.
    auto good = engine.submit(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    EXPECT_TRUE(good.get().report.has_value());
}

// ------------------------------------------------ dedup

TEST(Engine, IdenticalBindingsShareOneEvaluationContext)
{
    AnalysisEngine engine(4);
    std::vector<AnalysisRequest> requests;
    for (int i = 0; i < 12; ++i)
        requests.push_back(
            {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    requests.push_back(
        {ScenarioRef::scenario("emr"), EstimateSpec{}});

    const BatchReport report = engine.runBatch(requests);
    ASSERT_TRUE(report.allOk());
    EXPECT_EQ(engine.contextCount(), 2u);

    // Same binding, same context object (shared caches).
    const AnalysisSession a =
        engine.sessionFor(ScenarioRef::scenario("ga102"));
    const AnalysisSession b =
        engine.sessionFor(ScenarioRef::scenario("ga102"));
    EXPECT_EQ(&a.context(), &b.context());
    EXPECT_GE(a.context().estimator().cache().report.size(), 1u);
}

// ------------------------------------------------ request JSON

TEST(RequestIo, EveryKindRoundTripsThroughJson)
{
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});

    SweepSpec per_chiplet;
    per_chiplet.nodesPerChiplet = {{7.0, 10.0}, {10.0, 14.0}};
    requests.push_back(
        {ScenarioRef::designDirectory("data/testcases/GA102"),
         per_chiplet});

    MonteCarloSpec mc;
    mc.trials = 128;
    mc.seed = 1234567;
    mc.threads = 4;
    mc.bands.defectDensity = 0.5;
    requests.push_back({ScenarioRef::scenario("emr"), mc});

    SensitivitySpec sens;
    sens.metric = CarbonMetric::Total;
    sens.delta = 0.05;
    requests.push_back({ScenarioRef::scenario("a15"), sens});

    CostSpec cost;
    cost.params.volume = 5.0e6;
    cost.params.includeNre = false;
    requests.push_back({ScenarioRef::scenario("arvr-2k"), cost});

    for (const auto &request : requests) {
        const json::Value doc = requestToJson(request);
        const AnalysisRequest parsed = requestFromJson(
            json::parse(doc.dump(true)));
        EXPECT_TRUE(parsed == request)
            << doc.dump(true);
        EXPECT_EQ(parsed.kind(), request.kind());
    }
}

TEST(RequestIo, RejectsMalformedRequests)
{
    // Unknown key, named in the error.
    try {
        requestFromJson(json::parse(
            R"({"scenario": "ga102", "analysis": "estimate",
                "trils": 10})"));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("\"trils\""),
                  std::string::npos)
            << e.what();
    }

    // Missing / ambiguous binding.
    EXPECT_THROW(
        requestFromJson(json::parse(R"({"analysis": "cost"})")),
        ConfigError);
    EXPECT_THROW(requestFromJson(json::parse(
                     R"({"scenario": "x", "design_dir": "y"})")),
                 ConfigError);

    // Bad enum values and spec arguments.
    EXPECT_THROW(requestFromJson(json::parse(
                     R"({"scenario": "x", "analysis": "bogus"})")),
                 ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "trials": 1})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "sweep"})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "sensitivity",
                "metric": "karbon"})")),
        ConfigError);

    // Batches must be non-empty.
    EXPECT_THROW(requestsFromJson(json::parse("[]")),
                 ConfigError);
    EXPECT_THROW(requestsFromJson(json::parse("{}")),
                 ConfigError);
}

TEST(RequestIo, GuardsAgainstLossyNumericConversions)
{
    // JSON numbers are doubles: a seed above 2^53 cannot
    // round-trip, so serialization refuses it outright.
    MonteCarloSpec big_seed;
    big_seed.seed = (std::uint64_t{1} << 53) + 2;
    EXPECT_THROW(
        requestToJson({ScenarioRef::scenario("ga102"),
                       big_seed}),
        ConfigError);

    // Non-integral trial/seed/thread counts must not silently
    // truncate.
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "trials": 10.7})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "seed": -4})")),
        ConfigError);

    // Values past int range (or the sanity caps) are rejected,
    // not wrapped modulo 2^32: 4294967298 must not become "2
    // trials", and 10^10 threads must not become ~1.4 billion.
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "trials": 4294967298})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "threads": 10000000000})")),
        ConfigError);
}

// ------------------------------------------------ catalogs

class CatalogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info = ::testing::UnitTest::GetInstance()
                               ->current_test_info();
        dir_ = std::filesystem::path(::testing::TempDir()) /
               (std::string("ecochip_catalog_") + info->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string
    writeFile(const std::string &name, const std::string &text)
    {
        const auto path = dir_ / name;
        std::ofstream out(path);
        out << text;
        return path.string();
    }

    std::filesystem::path dir_;
};

constexpr const char *kCatalogJson = R"({
    "scenarios": [
        {
            "name": "tiny-soc",
            "description": "two-chiplet catalog scenario",
            "architecture": {
                "name": "tiny",
                "packaging": "rdl_fanout",
                "chiplets": [
                    {"name": "core", "type": "logic",
                     "node_nm": 7, "area_mm2": 60.0},
                    {"name": "cache", "type": "memory",
                     "node_nm": 10, "area_mm2": 30.0}
                ]
            },
            "operational": {"lifetime_years": 3,
                            "avg_power_w": 15.0}
        }
    ]
})";

TEST_F(CatalogTest, LoadFileRegistersScenariosForTheEngine)
{
    const std::string path =
        writeFile("catalog.json", kCatalogJson);

    EngineOptions options;
    options.threads = 2;
    options.registry.loadFile(path);
    AnalysisEngine engine(std::move(options));

    // Builtin and catalog scenarios resolve side by side.
    EXPECT_TRUE(engine.registry().contains("ga102"));
    EXPECT_TRUE(engine.registry().contains("tiny-soc"));

    const BatchReport report = engine.runBatch(
        {{ScenarioRef::scenario("tiny-soc"), EstimateSpec{}}});
    ASSERT_TRUE(report.allOk());
    const CarbonReport &estimate =
        *report.outcomes[0].result->report;
    EXPECT_EQ(report.outcomes[0].result->scenario, "tiny");
    EXPECT_EQ(estimate.chiplets.size(), 2u);
    EXPECT_GT(estimate.operation.co2Kg, 0.0);
}

TEST_F(CatalogTest, BatchFileResolvesItsCatalogRelatively)
{
    writeFile("catalog.json", kCatalogJson);
    const std::string batch_path = writeFile("batch.json", R"({
        "scenarios": "catalog.json",
        "requests": [
            {"scenario": "tiny-soc", "analysis": "estimate"},
            {"scenario": "ga102", "analysis": "cost"}
        ]
    })");

    const BatchFile batch = loadBatchFile(batch_path);
    ASSERT_TRUE(batch.scenarioCatalog.has_value());
    ASSERT_EQ(batch.requests.size(), 2u);

    EngineOptions options;
    options.threads = 2;
    options.registry.loadFile(*batch.scenarioCatalog);
    AnalysisEngine engine(std::move(options));
    const BatchReport report =
        engine.runBatch(batch.requests);
    EXPECT_TRUE(report.allOk());
    EXPECT_TRUE(
        report.outcomes[1].result->cost.has_value());
}

TEST_F(CatalogTest, BrokenCatalogsFailAtLoadTime)
{
    // Typo'd chiplet key: rejected while loading, naming the
    // catalog and the key.
    const std::string bad = writeFile("bad.json", R"({
        "scenarios": [
            {"name": "broken",
             "architecture": {
                 "name": "b",
                 "chiplets": [
                     {"name": "c", "node_nm": 7,
                      "area_m2": 10.0}
                 ]
             }}
        ]
    })");
    ScenarioRegistry registry;
    try {
        registry.loadFile(bad);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad.json"), std::string::npos)
            << what;
        EXPECT_NE(what.find("\"area_m2\""), std::string::npos)
            << what;
    }

    // Duplicate names collide with the builtin catalog.
    const std::string dup = writeFile("dup.json", R"({
        "scenarios": [
            {"name": "ga102",
             "architecture": {
                 "name": "g",
                 "chiplets": [
                     {"name": "c", "node_nm": 7,
                      "area_mm2": 10.0}
                 ]
             }}
        ]
    })");
    ScenarioRegistry builtin_copy = ScenarioRegistry::builtin();
    EXPECT_THROW(builtin_copy.loadFile(dup), ConfigError);

    // design_dir entries fail at load time too when the
    // directory is missing.
    const std::string gone = writeFile("gone.json", R"({
        "scenarios": [
            {"name": "vanished",
             "design_dir": "no/such/dir"}
        ]
    })");
    ScenarioRegistry dir_registry;
    EXPECT_THROW(dir_registry.loadFile(gone), ConfigError);
}

// ------------------------------------------------ streaming

TEST(Stream, DeliversEveryRequestExactlyOnceUnderFailures)
{
    // A batch salted with injected failures (unknown scenario,
    // missing design dir, invalid spec): the stream must deliver
    // every index exactly once, failures included, with the
    // callback serialized.
    std::vector<AnalysisRequest> requests;
    for (int round = 0; round < 3; ++round) {
        requests.push_back(
            {ScenarioRef::scenario("ga102"), EstimateSpec{}});
        requests.push_back(
            {ScenarioRef::scenario("no-such-scenario"),
             EstimateSpec{}});
        requests.push_back(
            {ScenarioRef::designDirectory("/no/such/dir"),
             EstimateSpec{}});
        requests.push_back(
            {ScenarioRef::scenario("emr"), SweepSpec{}});
        requests.push_back(
            {ScenarioRef::scenario("a15"), CostSpec{}});
    }

    AnalysisEngine engine(4);
    std::vector<int> seen(requests.size(), 0);
    std::size_t events = 0;
    std::atomic<int> in_callback{0};
    bool overlapped = false;
    engine.runStream(
        requests, [&](std::size_t index,
                      const RequestOutcome &outcome) {
            if (++in_callback != 1)
                overlapped = true;
            ASSERT_LT(index, requests.size());
            ++seen[index];
            ++events;
            EXPECT_TRUE(outcome.request == requests[index]);
            // Failure pattern matches the request pattern.
            const bool expect_ok = (index % 5 == 0) ||
                                   (index % 5 == 4);
            EXPECT_EQ(outcome.ok(), expect_ok) << index;
            if (!outcome.ok()) {
                EXPECT_FALSE(outcome.error.empty());
            }
            --in_callback;
        });

    EXPECT_FALSE(overlapped);
    EXPECT_EQ(events, requests.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << i;
}

TEST(Stream, RunBatchIsBitIdenticalToAssemblingTheStream)
{
    std::vector<AnalysisRequest> requests;
    for (const auto &name :
         ScenarioRegistry::builtin().names())
        requests.push_back(
            {ScenarioRef::scenario(name), EstimateSpec{}});
    MonteCarloSpec mc;
    mc.trials = 32;
    mc.seed = 11;
    requests.push_back({ScenarioRef::scenario("emr"), mc});

    AnalysisEngine stream_engine(8);
    BatchReport assembled;
    assembled.outcomes.resize(requests.size());
    stream_engine.runStream(
        requests, [&assembled](std::size_t index,
                               const RequestOutcome &outcome) {
            assembled.outcomes[index] = outcome;
        });

    AnalysisEngine batch_engine(8);
    const BatchReport batch =
        batch_engine.runBatch(requests);

    // One serialization path -> byte-equal JSON is the bit-
    // identity check across every payload kind.
    EXPECT_EQ(batchReportToJson(assembled).dump(true),
              batchReportToJson(batch).dump(true));
}

TEST(Stream, NdjsonEventsRoundTripThroughRequestIo)
{
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    MonteCarloSpec mc;
    mc.trials = 16;
    mc.seed = 3;
    requests.push_back({ScenarioRef::scenario("emr"), mc});
    requests.push_back(
        {ScenarioRef::scenario("no-such-scenario"),
         CostSpec{}});

    AnalysisEngine engine(2);
    std::ostringstream ndjson;
    engine.runStream(
        requests, [&ndjson](std::size_t index,
                            const RequestOutcome &outcome) {
            ndjson << streamEventLine(index, outcome) << "\n";
        });

    // Each line is a standalone JSON document whose "request"
    // member parses back to the original request via request_io.
    std::istringstream lines(ndjson.str());
    std::string line;
    std::size_t parsed_lines = 0;
    std::set<std::size_t> indices;
    while (std::getline(lines, line)) {
        const json::Value event = json::parse(line);
        ASSERT_TRUE(event.isObject());
        const auto index = static_cast<std::size_t>(
            event.at("index").asInteger());
        indices.insert(index);
        const AnalysisRequest request =
            requestFromJson(event.at("request"));
        EXPECT_TRUE(request == requests[index]) << line;
        EXPECT_EQ(event.at("ok").asBoolean(),
                  !event.contains("error"));
        ++parsed_lines;
    }
    EXPECT_EQ(parsed_lines, requests.size());
    EXPECT_EQ(indices.size(), requests.size());
}

// ------------------------------------------------ shard planning

TEST(ShardPlanner, KeepsBindingsTogetherAndDealsRoundRobin)
{
    // Bindings A B C A B A: groups appear in order A, B, C.
    std::vector<AnalysisRequest> requests = {
        {ScenarioRef::scenario("ga102"), EstimateSpec{}},
        {ScenarioRef::scenario("emr"), EstimateSpec{}},
        {ScenarioRef::scenario("a15"), EstimateSpec{}},
        {ScenarioRef::scenario("ga102"), CostSpec{}},
        {ScenarioRef::scenario("emr"), CostSpec{}},
        {ScenarioRef::scenario("ga102"), SensitivitySpec{}},
    };

    const ShardPlan plan = planShards(requests, 2);
    ASSERT_EQ(plan.shardCount(), 2u);
    EXPECT_EQ(plan.requestCount(), requests.size());
    // Round-robin by group: shard 0 gets ga102 + a15, shard 1
    // gets emr; indices ascend within each shard.
    EXPECT_EQ(plan.shards[0],
              (std::vector<std::size_t>{0, 2, 3, 5}));
    EXPECT_EQ(plan.shards[1],
              (std::vector<std::size_t>{1, 4}));

    // A binding never straddles shards, at any shard count.
    for (int shards : {1, 2, 3, 4, 8}) {
        const ShardPlan p = planShards(requests, shards);
        EXPECT_LE(p.shardCount(),
                  static_cast<std::size_t>(3));
        EXPECT_EQ(p.requestCount(), requests.size());
        std::map<std::string, std::size_t> home;
        std::set<std::size_t> all;
        for (std::size_t s = 0; s < p.shardCount(); ++s) {
            EXPECT_FALSE(p.shards[s].empty());
            for (std::size_t index : p.shards[s]) {
                all.insert(index);
                const std::string key =
                    requests[index].scenario.label();
                const auto it = home.find(key);
                if (it == home.end()) {
                    home.emplace(key, s);
                } else {
                    EXPECT_EQ(it->second, s) << key;
                }
            }
        }
        EXPECT_EQ(all.size(), requests.size());
    }

    EXPECT_THROW(planShards({}, 2), ConfigError);
    EXPECT_THROW(planShards(requests, 0), ConfigError);
}

TEST(ShardPlanner, MergeRejectsMalformedShardReports)
{
    const std::vector<AnalysisRequest> requests = {
        {ScenarioRef::scenario("ga102"), EstimateSpec{}},
        {ScenarioRef::scenario("emr"), EstimateSpec{}},
    };
    const ShardPlan plan = planShards(requests, 2);

    // Wrong report count.
    EXPECT_THROW(mergeShardReports(plan, {}), ConfigError);

    // Not a BatchReport document.
    EXPECT_THROW(
        mergeShardReports(
            plan, {json::parse("[]"), json::parse("{}")}),
        ConfigError);

    // Outcome count disagrees with the plan.
    const json::Value one_outcome = json::parse(
        R"({"outcomes": [{"ok": true}]})");
    EXPECT_THROW(
        mergeShardReports(
            plan,
            {json::parse(R"({"outcomes": []})"), one_outcome}),
        ConfigError);
}

// ------------------------------------------------ sharded runs

/** data/requests path of the shipped tree. */
std::string
shippedBatchPath()
{
    return (std::filesystem::path(ECOCHIP_DATA_DIR) /
            "requests" / "builtin_estimates.json")
        .string();
}

TEST(ShardRunner, MergedShardReportsAreByteIdenticalToOneProcess)
{
    // The acceptance gate: the shipped 13-request batch run as
    // 1/2/4 worker processes merges to the byte-identical
    // BatchReport JSON of the single-process runBatch.
    const BatchFile batch = loadBatchFile(shippedBatchPath());

    // Scoped so the engine's pool threads are joined before the
    // sharded runs fork worker processes.
    std::string single;
    {
        AnalysisEngine engine(4);
        single =
            batchReportToJson(engine.runBatch(batch.requests))
                .dump(true);
    }

    for (int shards : {1, 2, 4}) {
        ShardedRunOptions options;
        options.batchPath = shippedBatchPath();
        options.shards = shards;
        options.engineThreadsPerWorker = 2;
        // No workerExe: fork-without-exec library mode.
        const ShardedRunResult result =
            runShardedBatch(options);
        EXPECT_EQ(result.shardsUsed,
                  static_cast<std::size_t>(
                      std::min(shards, 9))); // 9 bindings
        EXPECT_TRUE(result.allOk());
        EXPECT_EQ(result.mergedReport.dump(true), single)
            << shards << " shards";
    }
}

TEST(ShardRunner, FailedRequestsSurviveTheShardCut)
{
    // A sub-batch with a failing request: the worker exits 1,
    // the report still merges, and the failure lands at its
    // original index.
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_shard_failures";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    std::vector<AnalysisRequest> requests = {
        {ScenarioRef::scenario("ga102"), EstimateSpec{}},
        {ScenarioRef::scenario("no-such-scenario"),
         EstimateSpec{}},
        {ScenarioRef::scenario("emr"), EstimateSpec{}},
    };
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    ShardedRunOptions options;
    options.batchPath = batch_path;
    options.shards = 3;
    options.shardDir = (dir / "shards").string();
    const ShardedRunResult result = runShardedBatch(options);

    EXPECT_EQ(result.shardsUsed, 3u);
    EXPECT_EQ(result.succeeded, 2u);
    EXPECT_EQ(result.failed, 1u);
    EXPECT_FALSE(result.allOk());
    const auto &outcomes =
        result.mergedReport.at("outcomes").asArray();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].at("ok").asBoolean());
    EXPECT_FALSE(outcomes[1].at("ok").asBoolean());
    EXPECT_NE(outcomes[1].at("error").asString().find(
                  "no-such-scenario"),
              std::string::npos);
    EXPECT_TRUE(outcomes[2].at("ok").asBoolean());

    // Scratch files were kept (explicit shardDir).
    EXPECT_EQ(result.shardFiles.size(), 3u);
    for (const auto &path : result.shardFiles)
        EXPECT_TRUE(std::filesystem::exists(path)) << path;

    std::filesystem::remove_all(dir);
}

TEST(ShardRunner, RelativeCatalogPathsSurviveTheShardCut)
{
    // Regression: a batch named by a cwd-relative path whose
    // "scenarios" catalog is batch-relative used to break under
    // sharding -- the sub-batch files live in another directory,
    // so the stored catalog path resolved against the wrong
    // base. writeShardFiles must pin it to an absolute path.
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_shard_rel_catalog";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    {
        std::ofstream catalog(dir / "catalog.json");
        catalog << kCatalogJson;
    }
    {
        std::ofstream batch(dir / "batch.json");
        batch << R"({
            "scenarios": "catalog.json",
            "requests": [
                {"scenario": "tiny-soc", "analysis": "estimate"},
                {"scenario": "ga102", "analysis": "estimate"}
            ]
        })";
    }

    // Address the batch with a path relative to the test's cwd,
    // exactly as a CLI user would.
    const std::string relative_batch =
        std::filesystem::relative(dir / "batch.json").string();
    ASSERT_FALSE(
        std::filesystem::path(relative_batch).is_absolute());

    ShardedRunOptions options;
    options.batchPath = relative_batch;
    options.shards = 2;
    options.shardDir = (dir / "shards").string();
    const ShardedRunResult result = runShardedBatch(options);
    EXPECT_EQ(result.shardsUsed, 2u);
    EXPECT_TRUE(result.allOk()) << result.mergedReport.dump();

    std::filesystem::remove_all(dir);
}

TEST(ShardRunner, WorkerRoundTripsItsSubBatchThroughRequestIo)
{
    // runShardWorker end to end on one file: the report's
    // requests parse back (NDJSON/report round-trip through
    // request_io) and match the sub-batch on disk.
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_shard_worker";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const BatchFile batch = loadBatchFile(shippedBatchPath());
    const ShardPlan plan = planShards(batch.requests, 4);
    const auto files =
        writeShardFiles(batch, plan, dir.string());
    ASSERT_EQ(files.size(), 4u);

    const std::string report_path =
        (dir / "report.json").string();
    const int code =
        runShardWorker(files[0], report_path, 2);
    EXPECT_EQ(code, 0);

    const json::Value report = json::parseFile(report_path);
    const auto &outcomes = report.at("outcomes").asArray();
    ASSERT_EQ(outcomes.size(), plan.shards[0].size());
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
        const AnalysisRequest request = requestFromJson(
            outcomes[j].at("request"));
        EXPECT_TRUE(request ==
                    batch.requests[plan.shards[0][j]]);
    }

    std::filesystem::remove_all(dir);
}

// ------------------------------------------------ coordinator

/** A manifest of @p count local-transport hosts, 1 slot each. */
HostManifest
localHosts(std::size_t count)
{
    HostManifest manifest;
    for (std::size_t i = 0; i < count; ++i)
        manifest.hosts.push_back(
            {"local-" + std::to_string(i), 1, ""});
    return manifest;
}

/** A shared TestTransport wired as every host's transport. */
CoordinatorOptions
testTransportOptions(const std::string &batch_path,
                     std::size_t host_count,
                     std::shared_ptr<TestTransport> transport)
{
    CoordinatorOptions options;
    options.batchPath = batch_path;
    options.hosts = localHosts(host_count);
    options.engineThreadsPerWorker = 2;
    options.transportFactory =
        [transport](const HostSpec &) { return transport; };
    return options;
}

TEST(Coordinator, MergedReportByteIdenticalAtOneTwoFourHosts)
{
    // The acceptance gate: the shipped 13-request batch
    // coordinated across 1/2/4 hosts merges to the
    // byte-identical BatchReport JSON of the single-process
    // runBatch.
    const BatchFile batch = loadBatchFile(shippedBatchPath());

    // Scoped so the engine's pool threads are joined before the
    // coordinated runs fork worker processes.
    std::string single;
    {
        AnalysisEngine engine(4);
        single =
            batchReportToJson(engine.runBatch(batch.requests))
                .dump(true);
    }

    for (std::size_t hosts : {1u, 2u, 4u}) {
        CoordinatorOptions options;
        options.batchPath = shippedBatchPath();
        options.hosts = localHosts(hosts);
        options.engineThreadsPerWorker = 2;
        // No workerExe: fork-without-exec library mode.
        const CoordinatedRunResult result =
            runCoordinatedBatch(options);
        EXPECT_EQ(result.shardsUsed,
                  std::min<std::size_t>(hosts, 9)); // 9 bindings
        EXPECT_TRUE(result.allOk());
        EXPECT_EQ(result.redispatches, 0u);
        EXPECT_EQ(result.attempts.size(), result.shardsUsed);
        EXPECT_EQ(result.mergedReport.dump(true), single)
            << hosts << " hosts";
    }
}

TEST(Coordinator, RetriesFailedShardOnAnotherHost)
{
    // Shard 0's first dispatch dies without a report: the
    // coordinator must retry it on a *different* host and the
    // merged report must still be byte-identical to the
    // single-process run.
    const BatchFile batch = loadBatchFile(shippedBatchPath());
    std::string single;
    {
        AnalysisEngine engine(4);
        single =
            batchReportToJson(engine.runBatch(batch.requests))
                .dump(true);
    }

    auto transport = std::make_shared<TestTransport>();
    transport->injectFailures(0, 1);
    CoordinatorOptions options = testTransportOptions(
        shippedBatchPath(), 2, transport);
    options.retries = 2;

    const CoordinatedRunResult result =
        runCoordinatedBatch(options);
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.redispatches, 1u);
    EXPECT_EQ(result.mergedReport.dump(true), single);

    // Dispatch history: shard 0 ran twice, on distinct hosts,
    // and the retry wrote to a fresh per-attempt report path
    // (so an orphaned first attempt can never race it).
    std::vector<std::string> shard0_hosts;
    std::vector<std::string> shard0_reports;
    for (const auto &dispatch : transport->history())
        if (dispatch.shard == 0) {
            shard0_hosts.push_back(dispatch.host);
            shard0_reports.push_back(dispatch.reportPath);
        }
    ASSERT_EQ(shard0_hosts.size(), 2u);
    EXPECT_NE(shard0_hosts[0], shard0_hosts[1]);
    ASSERT_EQ(shard0_reports.size(), 2u);
    EXPECT_NE(shard0_reports[0], shard0_reports[1]);
    EXPECT_NE(shard0_reports[1].find(".retry1"),
              std::string::npos)
        << shard0_reports[1];

    // The attempt record mirrors it: one failure, then ok.
    std::size_t failed_attempts = 0;
    for (const auto &attempt : result.attempts)
        if (attempt.shard == 0 && !attempt.ok)
            ++failed_attempts;
    EXPECT_EQ(failed_attempts, 1u);
}

TEST(Coordinator, StragglerIsCancelledAndRedispatched)
{
    // Shard 0's first dispatch hangs: the deadline must cancel
    // it, re-dispatch (on the other host), and the merged
    // report must still be byte-identical.
    const BatchFile batch = loadBatchFile(shippedBatchPath());
    std::string single;
    {
        AnalysisEngine engine(4);
        single =
            batchReportToJson(engine.runBatch(batch.requests))
                .dump(true);
    }

    auto transport = std::make_shared<TestTransport>();
    transport->injectHangs(0, 1);
    CoordinatorOptions options = testTransportOptions(
        shippedBatchPath(), 2, transport);
    options.retries = 1;
    options.shardTimeoutSeconds = 0.05;

    const CoordinatedRunResult result =
        runCoordinatedBatch(options);
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(transport->cancelled(), 1u);
    EXPECT_EQ(result.redispatches, 1u);
    EXPECT_EQ(result.mergedReport.dump(true), single);

    bool deadline_recorded = false;
    for (const auto &attempt : result.attempts)
        if (!attempt.ok &&
            attempt.reason.find("deadline") !=
                std::string::npos)
            deadline_recorded = true;
    EXPECT_TRUE(deadline_recorded);
}

TEST(Coordinator, SingleHostRetriesInPlace)
{
    // With one host there is no "other host" to exclude: the
    // retry must still happen (on the same host) instead of
    // deadlocking on an impossible exclusion.
    auto transport = std::make_shared<TestTransport>();
    transport->injectFailures(0, 1);
    CoordinatorOptions options = testTransportOptions(
        shippedBatchPath(), 1, transport);
    options.retries = 1;

    const CoordinatedRunResult result =
        runCoordinatedBatch(options);
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.redispatches, 1u);
    std::size_t shard0_dispatches = 0;
    for (const auto &dispatch : transport->history())
        if (dispatch.shard == 0)
            ++shard0_dispatches;
    EXPECT_EQ(shard0_dispatches, 2u);
}

TEST(Coordinator, ThrowsOnceRetriesAreExhausted)
{
    auto transport = std::make_shared<TestTransport>();
    transport->injectFailures(0, 100);
    CoordinatorOptions options = testTransportOptions(
        shippedBatchPath(), 2, transport);
    options.retries = 1;

    try {
        runCoordinatedBatch(options);
        FAIL() << "expected Error";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no retries left"),
                  std::string::npos)
            << what;
    }
    // retries=1 allows 2 attempts of shard 0.
    std::size_t shard0_dispatches = 0;
    for (const auto &dispatch : transport->history())
        if (dispatch.shard == 0)
            ++shard0_dispatches;
    EXPECT_EQ(shard0_dispatches, 2u);
}

TEST(Coordinator, RequestLevelFailuresAreDataNotRetries)
{
    // A worker whose *requests* fail exits 1 with a report:
    // that is data in the merged outcomes, never a re-dispatch.
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_coordinator_failures";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    std::vector<AnalysisRequest> requests = {
        {ScenarioRef::scenario("ga102"), EstimateSpec{}},
        {ScenarioRef::scenario("no-such-scenario"),
         EstimateSpec{}},
        {ScenarioRef::scenario("emr"), EstimateSpec{}},
    };
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    auto transport = std::make_shared<TestTransport>();
    CoordinatorOptions options =
        testTransportOptions(batch_path, 3, transport);
    options.shardDir = (dir / "shards").string();
    const CoordinatedRunResult result =
        runCoordinatedBatch(options);

    EXPECT_EQ(result.shardsUsed, 3u);
    EXPECT_EQ(result.succeeded, 2u);
    EXPECT_EQ(result.failed, 1u);
    EXPECT_EQ(result.redispatches, 0u);
    EXPECT_FALSE(result.allOk());
    const auto &outcomes =
        result.mergedReport.at("outcomes").asArray();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(outcomes[1].at("ok").asBoolean());

    std::filesystem::remove_all(dir);
}

TEST(Coordinator, CommandTransportExpandsItsTemplate)
{
    HostSpec host;
    host.name = "node-a";
    host.slots = 2;
    host.command =
        "ssh {host} {worker} --shard_worker {sub_batch} "
        "--json {report} --engine_threads {threads} "
        "{scenarios_args}";
    const CommandTransport transport(host);

    ShardDispatch dispatch;
    dispatch.shard = 3;
    dispatch.host = host.name;
    dispatch.subBatchPath = "/shared/shard_003.json";
    dispatch.reportPath = "/shared/shard_003.json.report";
    dispatch.engineThreads = 4;
    dispatch.workerExe = "/shared/eco_chip";
    EXPECT_EQ(transport.commandFor(dispatch),
              "ssh node-a /shared/eco_chip --shard_worker "
              "/shared/shard_003.json --json "
              "/shared/shard_003.json.report "
              "--engine_threads 4 ");

    dispatch.scenariosPath = "/shared/catalog.json";
    EXPECT_EQ(transport.commandFor(dispatch),
              "ssh node-a /shared/eco_chip --shard_worker "
              "/shared/shard_003.json --json "
              "/shared/shard_003.json.report "
              "--engine_threads 4 "
              "--scenarios /shared/catalog.json");

    // {worker} with no worker executable is a config error.
    dispatch.workerExe.clear();
    EXPECT_THROW(transport.commandFor(dispatch), ConfigError);

    // Substituted values with shell metacharacters are quoted
    // so they cannot split into words or grow syntax under
    // `/bin/sh -c`.
    dispatch.workerExe = "/shared/eco_chip";
    dispatch.subBatchPath = "/tmp/my runs/shard_003.json";
    dispatch.scenariosPath = "/tmp/it's/catalog.json";
    const std::string quoted = transport.commandFor(dispatch);
    EXPECT_NE(quoted.find("'/tmp/my runs/shard_003.json'"),
              std::string::npos)
        << quoted;
    EXPECT_NE(
        quoted.find("--scenarios '/tmp/it'\\''s/catalog.json'"),
        std::string::npos)
        << quoted;
}

// ------------------------------------------------ work queue

TEST(WorkQueue, PlanChunksIsBindingCohesive)
{
    // Property: at any chunk target, each scenario binding's
    // requests land in exactly one chunk (so per-worker
    // EvaluationContext dedup survives the cut), every index
    // appears exactly once, and indices ascend within a chunk.
    const BatchFile batch = loadBatchFile(shippedBatchPath());
    const auto &requests = batch.requests;

    for (int target : {1, 2, 3, 5, 8, 100}) {
        const ChunkPlan plan = planChunks(requests, target);
        EXPECT_EQ(plan.requestCount(), requests.size())
            << "target " << target;
        std::map<std::string, std::size_t> home;
        std::set<std::size_t> all;
        for (std::size_t c = 0; c < plan.chunkCount(); ++c) {
            ASSERT_FALSE(plan.chunks[c].empty());
            EXPECT_TRUE(std::is_sorted(plan.chunks[c].begin(),
                                       plan.chunks[c].end()));
            for (std::size_t index : plan.chunks[c]) {
                EXPECT_TRUE(all.insert(index).second)
                    << "duplicate index " << index;
                const std::string key =
                    requests[index].scenario.label();
                const auto it = home.find(key);
                if (it == home.end())
                    home.emplace(key, c);
                else
                    EXPECT_EQ(it->second, c)
                        << "binding " << key
                        << " straddles chunks at target "
                        << target;
            }
        }
        EXPECT_EQ(all.size(), requests.size());
    }

    // A binding bigger than the target still travels whole, as
    // its own chunk.
    std::vector<AnalysisRequest> skewed = {
        {ScenarioRef::scenario("ga102"), EstimateSpec{}},
        {ScenarioRef::scenario("ga102"), CostSpec{}},
        {ScenarioRef::scenario("ga102"), SensitivitySpec{}},
        {ScenarioRef::scenario("emr"), EstimateSpec{}},
    };
    const ChunkPlan oversized = planChunks(skewed, 1);
    ASSERT_EQ(oversized.chunkCount(), 2u);
    EXPECT_EQ(oversized.chunks[0],
              (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(oversized.chunks[1],
              (std::vector<std::size_t>{3}));

    // Subset planning covers exactly the given indices.
    const ChunkPlan partial =
        planChunksOver(requests, {3, 7, 11}, 2);
    std::set<std::size_t> covered;
    for (const auto &chunk : partial.chunks)
        covered.insert(chunk.begin(), chunk.end());
    EXPECT_EQ(covered, (std::set<std::size_t>{3, 7, 11}));

    EXPECT_THROW(planChunks({}, 2), ConfigError);
    EXPECT_THROW(planChunks(requests, 0), ConfigError);
    EXPECT_THROW(planChunksOver(requests, {0, 0}, 2),
                 ConfigError);
    EXPECT_THROW(
        planChunksOver(requests, {requests.size()}, 2),
        ConfigError);
}

TEST(WorkQueue, IncrementalMergerIsPermutationInvariant)
{
    // Outcomes merged in any arrival order produce the exact
    // bytes of the batch report -- the property that makes
    // streaming merge safe under work stealing.
    const BatchFile batch = loadBatchFile(shippedBatchPath());
    AnalysisEngine engine(4);
    const BatchReport report = engine.runBatch(batch.requests);
    const std::string expected =
        batchReportToJson(report).dump(true);

    std::vector<json::Value> outcomes;
    for (const auto &outcome : report.outcomes)
        outcomes.push_back(outcomeToJson(outcome));

    std::vector<std::size_t> order(outcomes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::mt19937 rng(20260808);
    for (int round = 0; round < 8; ++round) {
        std::shuffle(order.begin(), order.end(), rng);
        IncrementalMerger merger(outcomes.size());
        for (std::size_t index : order) {
            EXPECT_FALSE(merger.complete());
            EXPECT_TRUE(merger.add(index, outcomes[index]));
            EXPECT_FALSE(merger.add(index, outcomes[index]))
                << "duplicate delivery must be dropped";
        }
        EXPECT_TRUE(merger.complete());
        EXPECT_EQ(merger.report().dump(true), expected)
            << "round " << round;
    }

    // Partial merges report what is missing, and refuse to
    // produce a report.
    IncrementalMerger partial(outcomes.size());
    partial.add(2, outcomes[2]);
    partial.add(5, outcomes[5]);
    EXPECT_EQ(partial.doneCount(), 2u);
    const auto missing = partial.missingIndices();
    EXPECT_EQ(missing.size(), outcomes.size() - 2);
    EXPECT_EQ(std::count(missing.begin(), missing.end(), 2u),
              0);
    EXPECT_THROW(partial.report(), ModelError);
}

// ------------------------------------------------ dynamic coordinator

/** Fault shapes of the dynamic-coordinator test matrix. */
enum class MatrixFault
{
    FailOnce,
    HangThenCancel,
    KillMidStream,
    UnevenSpeed,
};

TEST(DynamicCoordinator, FaultMatrixMergesByteIdentical)
{
    // The acceptance gate: {1,2,4} hosts x {fail-once,
    // hang-then-cancel, kill-mid-stream, uneven-speed} x
    // {fresh, resume-from-journal} -- every cell's dynamically
    // merged report is byte-identical to the single-process
    // batch run.
    const BatchFile batch = loadBatchFile(shippedBatchPath());
    std::string single;
    std::vector<std::string> journal_lines;
    {
        // Scoped so the engine's pool threads are joined before
        // coordinating; the first 5 outcomes double as the
        // resume journal of a "killed" earlier run.
        AnalysisEngine engine(4);
        const BatchReport report =
            engine.runBatch(batch.requests);
        single = batchReportToJson(report).dump(true);
        for (std::size_t i = 0; i < 5; ++i)
            journal_lines.push_back(
                streamEventLine(i, report.outcomes[i]));
    }

    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_dyn_matrix";

    for (std::size_t hosts : {1u, 2u, 4u}) {
        for (MatrixFault fault :
             {MatrixFault::FailOnce, MatrixFault::HangThenCancel,
              MatrixFault::KillMidStream,
              MatrixFault::UnevenSpeed}) {
            for (bool resume : {false, true}) {
                std::filesystem::remove_all(dir);
                std::filesystem::create_directories(dir);
                if (resume) {
                    std::ofstream journal(
                        (dir / coordinatorJournalName())
                            .string());
                    for (const auto &line : journal_lines)
                        journal << line << '\n';
                }

                CoordinatorOptions options;
                options.batchPath = shippedBatchPath();
                options.hosts = localHosts(hosts);
                options.engineThreadsPerWorker = 2;
                options.shardDir = dir.string();
                options.resume = resume;
                options.chunkTargetRequests = 2;
                options.retries = 2;

                std::vector<std::shared_ptr<TestTransport>>
                    transports;
                options.transportFactory =
                    [&](const HostSpec &) {
                        auto transport =
                            std::make_shared<TestTransport>();
                        if (transports.empty()) {
                            // Host 0 carries the fault.
                            switch (fault) {
                            case MatrixFault::FailOnce:
                                transport->injectFailures(0, 1);
                                break;
                            case MatrixFault::HangThenCancel:
                                transport->injectHangs(0, 1);
                                break;
                            case MatrixFault::KillMidStream: {
                                TransportFault kill;
                                kill.kind = TransportFault::
                                    Kind::KillMidStream;
                                kill.eventLines = 1;
                                transport->injectFault(0, kill);
                                break;
                            }
                            case MatrixFault::UnevenSpeed:
                                transport->setSpeed(0.01,
                                                    0.005);
                                break;
                            }
                        }
                        transports.push_back(transport);
                        return transport;
                    };
                if (fault == MatrixFault::HangThenCancel) {
                    options.retries = 1;
                    options.shardTimeoutSeconds = 0.2;
                }

                const std::string cell =
                    std::to_string(hosts) + " hosts, fault " +
                    std::to_string(static_cast<int>(fault)) +
                    (resume ? ", resumed" : ", fresh");
                const CoordinatedRunResult result =
                    runDynamicCoordinatedBatch(options);
                EXPECT_TRUE(result.allOk()) << cell;
                EXPECT_EQ(result.resumedOutcomes,
                          resume ? 5u : 0u)
                    << cell;
                EXPECT_EQ(result.mergedReport.dump(true),
                          single)
                    << cell;
                // The journal now holds every outcome, so a
                // second resume dispatches nothing at all.
                CoordinatorOptions replay = options;
                replay.resume = true;
                replay.transportFactory =
                    [](const HostSpec &) {
                        auto transport =
                            std::make_shared<TestTransport>();
                        // Any dispatch would fail the run.
                        transport->injectFailures(0, 100);
                        return std::shared_ptr<ShardTransport>(
                            transport);
                    };
                replay.retries = 0;
                const CoordinatedRunResult replayed =
                    runDynamicCoordinatedBatch(replay);
                EXPECT_EQ(replayed.resumedOutcomes,
                          batch.requests.size())
                    << cell;
                EXPECT_EQ(replayed.chunksPlanned, 0u) << cell;
                EXPECT_EQ(replayed.mergedReport.dump(true),
                          single)
                    << cell;
            }
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(DynamicCoordinator, ResumeNeverRerunsJournaledRequests)
{
    // Resumed indices must stay out of every dispatched chunk:
    // the whole point of the journal is that finished work is
    // never re-run.
    const BatchFile batch = loadBatchFile(shippedBatchPath());
    std::vector<std::string> journal_lines;
    {
        AnalysisEngine engine(4);
        const BatchReport report =
            engine.runBatch(batch.requests);
        for (std::size_t i = 0; i < 5; ++i)
            journal_lines.push_back(
                streamEventLine(i, report.outcomes[i]));
    }

    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_dyn_resume";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        std::ofstream journal(
            (dir / coordinatorJournalName()).string());
        for (const auto &line : journal_lines)
            journal << line << '\n';
    }

    auto transport = std::make_shared<TestTransport>();
    CoordinatorOptions options = testTransportOptions(
        shippedBatchPath(), 2, transport);
    options.shardDir = dir.string();
    options.resume = true;
    options.chunkTargetRequests = 1;

    const CoordinatedRunResult result =
        runDynamicCoordinatedBatch(options);
    EXPECT_EQ(result.resumedOutcomes, 5u);
    EXPECT_TRUE(result.allOk());

    // Every dispatched sub-batch holds only never-journaled
    // requests; across all dispatches they cover exactly the
    // remaining 8.
    std::size_t dispatched_requests = 0;
    for (const auto &dispatch : transport->history()) {
        const BatchFile chunk =
            loadBatchFile(dispatch.subBatchPath);
        dispatched_requests += chunk.requests.size();
        for (const auto &request : chunk.requests)
            for (std::size_t i = 0; i < 5; ++i)
                EXPECT_FALSE(request == batch.requests[i])
                    << "journaled request " << i
                    << " was re-dispatched";
    }
    EXPECT_EQ(dispatched_requests, batch.requests.size() - 5);
    std::filesystem::remove_all(dir);
}

TEST(DynamicCoordinator, StaleJournalIsUnlinkedOnFreshRun)
{
    // A reused --shard_dir with a stale (even corrupt) journal
    // must not poison a fresh run -- the same hygiene as stale
    // shard reports. Regression: the static scheduler must scrub
    // it too, so a later --resume cannot replay outcomes of a
    // long-gone batch.
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_stale_journal";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto journal_path = dir / coordinatorJournalName();

    const BatchFile batch = loadBatchFile(shippedBatchPath());
    std::string single;
    {
        AnalysisEngine engine(4);
        single =
            batchReportToJson(engine.runBatch(batch.requests))
                .dump(true);
    }

    {
        std::ofstream stale(journal_path.string());
        stale << "this is not even json\n";
    }
    CoordinatorOptions options;
    options.batchPath = shippedBatchPath();
    options.hosts = localHosts(2);
    options.engineThreadsPerWorker = 2;
    options.shardDir = dir.string();
    const CoordinatedRunResult result =
        runDynamicCoordinatedBatch(options);
    EXPECT_EQ(result.mergedReport.dump(true), single);
    // The journal was rewritten from scratch: it now replays
    // cleanly and covers the whole batch.
    EXPECT_EQ(replayEventJournal(journal_path.string()).size(),
              batch.requests.size());

    // The static scheduler scrubs it the same way.
    {
        std::ofstream stale(journal_path.string());
        stale << "this is not even json\n";
    }
    const CoordinatedRunResult static_result =
        runCoordinatedBatch(options);
    EXPECT_EQ(static_result.mergedReport.dump(true), single);
    EXPECT_FALSE(std::filesystem::exists(journal_path));

    std::filesystem::remove_all(dir);
}

TEST(DynamicCoordinator, ResumeRejectsJournalFromDifferentBatch)
{
    // A journal whose recorded request disagrees with the batch
    // at that index is another batch's checkpoint; replaying it
    // would splice wrong results into the report.
    const BatchFile batch = loadBatchFile(shippedBatchPath());
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_wrong_journal";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        AnalysisEngine engine(2);
        const BatchReport report =
            engine.runBatch({batch.requests[1]});
        std::ofstream journal(
            (dir / coordinatorJournalName()).string());
        // Request 1's outcome journaled at index 0: mismatch.
        journal << streamEventLine(0, report.outcomes[0])
                << '\n';
    }

    CoordinatorOptions options;
    options.batchPath = shippedBatchPath();
    options.hosts = localHosts(1);
    options.engineThreadsPerWorker = 2;
    options.shardDir = dir.string();
    options.resume = true;
    try {
        runDynamicCoordinatedBatch(options);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("different batch"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove_all(dir);

    // And --resume without a shard dir is a config error: a
    // temp dir never has a journal to replay.
    CoordinatorOptions no_dir;
    no_dir.batchPath = shippedBatchPath();
    no_dir.hosts = localHosts(1);
    no_dir.resume = true;
    EXPECT_THROW(runDynamicCoordinatedBatch(no_dir),
                 ConfigError);
}

TEST(DynamicCoordinator, EarlyAbortCancelsUndispatchedChunks)
{
    // abort_after_failures=1 with single-request chunks on one
    // slot: the first chunk fails, every undispatched chunk is
    // cancelled, and the never-run requests report synthetic
    // "aborted" errors -- which stay out of the journal, so a
    // --resume completes them to the exact --batch bytes.
    const auto dir =
        std::filesystem::path(::testing::TempDir()) /
        "ecochip_dyn_abort";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    std::vector<AnalysisRequest> requests = {
        {ScenarioRef::scenario("no-such-scenario"),
         EstimateSpec{}},
        {ScenarioRef::scenario("ga102"), EstimateSpec{}},
        {ScenarioRef::scenario("emr"), EstimateSpec{}},
        {ScenarioRef::scenario("a15"), EstimateSpec{}},
    };
    const std::string batch_path =
        (dir / "batch.json").string();
    json::Value doc = json::Value::makeObject();
    doc.set("requests", requestsToJson(requests));
    json::writeFile(doc, batch_path);

    std::string single;
    {
        AnalysisEngine engine(2);
        single = batchReportToJson(engine.runBatch(requests))
                     .dump(true);
    }

    auto transport = std::make_shared<TestTransport>();
    CoordinatorOptions options =
        testTransportOptions(batch_path, 1, transport);
    options.shardDir = (dir / "shards").string();
    options.chunkTargetRequests = 1;
    options.abortAfterFailedRequests = 1;

    const CoordinatedRunResult result =
        runDynamicCoordinatedBatch(options);
    EXPECT_TRUE(result.aborted);
    EXPECT_EQ(result.chunksPlanned, 4u);
    EXPECT_LT(transport->history().size(), 4u)
        << "abort must leave chunks undispatched";
    const auto &outcomes =
        result.mergedReport.at("outcomes").asArray();
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_FALSE(outcomes[0].at("ok").asBoolean());
    std::size_t aborted_outcomes = 0;
    for (const auto &outcome : outcomes)
        if (outcome.stringOr("error", "").rfind("aborted:",
                                                0) == 0)
            ++aborted_outcomes;
    EXPECT_GE(aborted_outcomes, 1u);

    // Synthetic outcomes were not journaled: only genuinely
    // finished requests replay.
    const auto journaled = replayEventJournal(
        (std::filesystem::path(options.shardDir) /
         coordinatorJournalName())
            .string());
    EXPECT_EQ(journaled.size(), 4u - aborted_outcomes);

    // Resume (without the abort policy) finishes the batch to
    // the exact single-process bytes.
    CoordinatorOptions finish = options;
    finish.abortAfterFailedRequests = 0;
    finish.resume = true;
    const CoordinatedRunResult finished =
        runDynamicCoordinatedBatch(finish);
    EXPECT_FALSE(finished.aborted);
    EXPECT_EQ(finished.mergedReport.dump(true), single);

    std::filesystem::remove_all(dir);
}

TEST(DynamicCoordinator, ProgressReportsPerHostCounters)
{
    // The --progress consumer: the final snapshot accounts for
    // every request and chunk, per host, with a sane rate.
    auto transport = std::make_shared<TestTransport>();
    CoordinatorOptions options = testTransportOptions(
        shippedBatchPath(), 2, transport);
    options.chunkTargetRequests = 3;
    std::vector<CoordinatorProgress> snapshots;
    options.onProgress =
        [&](const CoordinatorProgress &progress) {
            snapshots.push_back(progress);
        };

    const CoordinatedRunResult result =
        runDynamicCoordinatedBatch(options);
    EXPECT_TRUE(result.allOk());
    ASSERT_FALSE(snapshots.empty());
    const CoordinatorProgress &last = snapshots.back();
    EXPECT_EQ(last.requestsTotal, 13u);
    EXPECT_EQ(last.requestsDone, 13u);
    EXPECT_EQ(last.requestsFailed, 0u);
    EXPECT_EQ(last.chunksTotal, result.chunksPlanned);
    EXPECT_EQ(last.chunksDone, result.chunksPlanned);
    EXPECT_EQ(last.chunksInFlight, 0u);
    EXPECT_FALSE(last.aborted);
    EXPECT_GE(last.requestsPerSecond, 0.0);
    ASSERT_EQ(last.hosts.size(), 2u);
    std::size_t chunks_by_host = 0;
    std::size_t requests_by_host = 0;
    for (const auto &host : last.hosts) {
        EXPECT_EQ(host.inFlightChunks, 0u);
        chunks_by_host += host.doneChunks;
        requests_by_host += host.doneRequests;
    }
    EXPECT_EQ(chunks_by_host, result.chunksPlanned);
    EXPECT_EQ(requests_by_host, 13u);
}

// ------------------------------------------------ thread pool

TEST(ThreadPoolTest, RejectsNonPositiveWorkerCounts)
{
    EXPECT_THROW(ThreadPool(0), ConfigError);
    EXPECT_THROW(AnalysisEngine(0), ConfigError);
    EXPECT_THROW(ThreadPool(-3), ConfigError);
}

TEST(ThreadPoolTest, DrainsEveryPostedTaskBeforeJoining)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        EXPECT_EQ(pool.threadCount(), 3);
        for (int i = 0; i < 100; ++i)
            pool.post([&ran] { ++ran; });
        // Destructor must wait for all 100, not drop the queue.
    }
    EXPECT_EQ(ran.load(), 100);
}

} // namespace
} // namespace ecochip
