/**
 * @file
 * Tests for the declarative request API and the async batch
 * engine: JSON round-trips, batch-vs-session bit-equality at any
 * thread count, per-request failure isolation, and scenario
 * catalog loading.
 */

#include <atomic>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "engine/analysis_engine.h"
#include "engine/thread_pool.h"
#include "io/request_io.h"
#include "io/result_writer.h"
#include "support/error.h"

namespace ecochip {
namespace {

void
expectSameReport(const CarbonReport &expected,
                 const CarbonReport &actual)
{
    EXPECT_EQ(expected.mfgCo2Kg, actual.mfgCo2Kg);
    EXPECT_EQ(expected.designCo2Kg, actual.designCo2Kg);
    EXPECT_EQ(expected.nreCo2Kg, actual.nreCo2Kg);
    EXPECT_EQ(expected.hi.packageCo2Kg, actual.hi.packageCo2Kg);
    EXPECT_EQ(expected.hi.routingCo2Kg, actual.hi.routingCo2Kg);
    EXPECT_EQ(expected.operation.co2Kg, actual.operation.co2Kg);
    EXPECT_EQ(expected.embodiedCo2Kg(), actual.embodiedCo2Kg());
    EXPECT_EQ(expected.totalCo2Kg(), actual.totalCo2Kg());
    ASSERT_EQ(expected.chiplets.size(), actual.chiplets.size());
    for (std::size_t i = 0; i < expected.chiplets.size(); ++i) {
        EXPECT_EQ(expected.chiplets[i].yield,
                  actual.chiplets[i].yield);
        EXPECT_EQ(expected.chiplets[i].mfgCo2Kg,
                  actual.chiplets[i].mfgCo2Kg);
    }
}

// ------------------------------------------------ acceptance

TEST(Engine, BatchOfBuiltinEstimatesMatchesSequentialSessions)
{
    // The acceptance gate: estimates of every builtin scenario
    // through `runBatch` -- with the requests additionally pushed
    // through a JSON round-trip -- are bit-identical to
    // sequential AnalysisSession::estimate() calls, at any
    // engine thread count.
    const auto names = ScenarioRegistry::builtin().names();
    ASSERT_GE(names.size(), 9u);

    std::vector<AnalysisRequest> requests;
    for (const auto &name : names)
        requests.push_back({ScenarioRef::scenario(name),
                            EstimateSpec{}});

    // serialize -> parse -> equal results.
    const json::Value wire = requestsToJson(requests);
    const std::vector<AnalysisRequest> parsed =
        requestsFromJson(json::parse(wire.dump(true)),
                         "round-trip");
    ASSERT_EQ(parsed.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
        EXPECT_TRUE(parsed[i] == requests[i]) << names[i];

    for (int threads : {1, 3, 8}) {
        AnalysisEngine engine(threads);
        const BatchReport report = engine.runBatch(parsed);
        ASSERT_TRUE(report.allOk());
        ASSERT_EQ(report.outcomes.size(), names.size());

        for (std::size_t i = 0; i < names.size(); ++i) {
            const AnalysisResult sequential =
                ScenarioBuilder()
                    .scenario(names[i])
                    .build()
                    .estimate();
            const auto &outcome = report.outcomes[i];
            ASSERT_TRUE(outcome.ok()) << names[i];
            EXPECT_EQ(outcome.request.scenario.value, names[i]);
            ASSERT_TRUE(outcome.result->report.has_value());
            expectSameReport(*sequential.report,
                             *outcome.result->report);
        }
    }
}

TEST(Engine, ThreadCountsAreBitIdenticalForEqualSeeds)
{
    // Every verb kind in one batch; threads=1 and threads=8 must
    // agree bit-for-bit (Monte Carlo seeds included).
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    SweepSpec sweep;
    sweep.nodesNm = {7.0, 10.0, 14.0};
    requests.push_back(
        {ScenarioRef::scenario("ga102"), sweep});
    MonteCarloSpec mc;
    mc.trials = 64;
    mc.seed = 7;
    mc.threads = 2;
    requests.push_back({ScenarioRef::scenario("emr"), mc});
    requests.push_back({ScenarioRef::scenario("a15"),
                        SensitivitySpec{}});
    requests.push_back(
        {ScenarioRef::scenario("hbm-accel"), CostSpec{}});

    AnalysisEngine serial(1);
    AnalysisEngine parallel(8);
    const BatchReport a = serial.runBatch(requests);
    const BatchReport b = parallel.runBatch(requests);
    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());

    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const AnalysisResult &ra = *a.outcomes[i].result;
        const AnalysisResult &rb = *b.outcomes[i].result;
        EXPECT_EQ(ra.kind, rb.kind);
        EXPECT_EQ(ra.scenario, rb.scenario);
        // One serialization path -> byte-equal JSON is the
        // strongest cheap bit-identity check across payloads.
        EXPECT_EQ(resultToJson(ra).dump(true),
                  resultToJson(rb).dump(true))
            << i;
    }
}

// ------------------------------------------------ failure paths

TEST(Engine, FailedRequestNeverTakesDownTheBatch)
{
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    requests.push_back(
        {ScenarioRef::scenario("no-such-scenario"),
         EstimateSpec{}});
    requests.push_back(
        {ScenarioRef::scenario("emr"), EstimateSpec{}});

    AnalysisEngine engine(4);
    const BatchReport report = engine.runBatch(requests);
    ASSERT_EQ(report.outcomes.size(), 3u);
    EXPECT_EQ(report.succeeded(), 2u);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_FALSE(report.allOk());

    EXPECT_TRUE(report.outcomes[0].ok());
    EXPECT_FALSE(report.outcomes[1].ok());
    EXPECT_TRUE(report.outcomes[2].ok());
    // The error names the unknown scenario and the alternatives,
    // exactly as ScenarioBuilder throws it.
    EXPECT_NE(report.outcomes[1].error.find("no-such-scenario"),
              std::string::npos)
        << report.outcomes[1].error;
    EXPECT_NE(report.outcomes[1].error.find("ga102"),
              std::string::npos);
    EXPECT_TRUE(report.outcomes[1].result == std::nullopt);
}

TEST(Engine, SubmitPropagatesExceptionsThroughTheFuture)
{
    AnalysisEngine engine(2);
    auto future = engine.submit(
        {ScenarioRef::designDirectory("/no/such/dir"),
         EstimateSpec{}});
    EXPECT_THROW(future.get(), ConfigError);

    // An invalid spec fails its own future too.
    SweepSpec empty;
    auto bad_spec = engine.submit(
        {ScenarioRef::scenario("ga102"), empty});
    EXPECT_THROW(bad_spec.get(), ConfigError);

    // The engine stays usable afterwards.
    auto good = engine.submit(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    EXPECT_TRUE(good.get().report.has_value());
}

// ------------------------------------------------ dedup

TEST(Engine, IdenticalBindingsShareOneEvaluationContext)
{
    AnalysisEngine engine(4);
    std::vector<AnalysisRequest> requests;
    for (int i = 0; i < 12; ++i)
        requests.push_back(
            {ScenarioRef::scenario("ga102"), EstimateSpec{}});
    requests.push_back(
        {ScenarioRef::scenario("emr"), EstimateSpec{}});

    const BatchReport report = engine.runBatch(requests);
    ASSERT_TRUE(report.allOk());
    EXPECT_EQ(engine.contextCount(), 2u);

    // Same binding, same context object (shared caches).
    const AnalysisSession a =
        engine.sessionFor(ScenarioRef::scenario("ga102"));
    const AnalysisSession b =
        engine.sessionFor(ScenarioRef::scenario("ga102"));
    EXPECT_EQ(&a.context(), &b.context());
    EXPECT_GE(a.context().estimator().cache().report.size(), 1u);
}

// ------------------------------------------------ request JSON

TEST(RequestIo, EveryKindRoundTripsThroughJson)
{
    std::vector<AnalysisRequest> requests;
    requests.push_back(
        {ScenarioRef::scenario("ga102"), EstimateSpec{}});

    SweepSpec per_chiplet;
    per_chiplet.nodesPerChiplet = {{7.0, 10.0}, {10.0, 14.0}};
    requests.push_back(
        {ScenarioRef::designDirectory("data/testcases/GA102"),
         per_chiplet});

    MonteCarloSpec mc;
    mc.trials = 128;
    mc.seed = 1234567;
    mc.threads = 4;
    mc.bands.defectDensity = 0.5;
    requests.push_back({ScenarioRef::scenario("emr"), mc});

    SensitivitySpec sens;
    sens.metric = CarbonMetric::Total;
    sens.delta = 0.05;
    requests.push_back({ScenarioRef::scenario("a15"), sens});

    CostSpec cost;
    cost.params.volume = 5.0e6;
    cost.params.includeNre = false;
    requests.push_back({ScenarioRef::scenario("arvr-2k"), cost});

    for (const auto &request : requests) {
        const json::Value doc = requestToJson(request);
        const AnalysisRequest parsed = requestFromJson(
            json::parse(doc.dump(true)));
        EXPECT_TRUE(parsed == request)
            << doc.dump(true);
        EXPECT_EQ(parsed.kind(), request.kind());
    }
}

TEST(RequestIo, RejectsMalformedRequests)
{
    // Unknown key, named in the error.
    try {
        requestFromJson(json::parse(
            R"({"scenario": "ga102", "analysis": "estimate",
                "trils": 10})"));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("\"trils\""),
                  std::string::npos)
            << e.what();
    }

    // Missing / ambiguous binding.
    EXPECT_THROW(
        requestFromJson(json::parse(R"({"analysis": "cost"})")),
        ConfigError);
    EXPECT_THROW(requestFromJson(json::parse(
                     R"({"scenario": "x", "design_dir": "y"})")),
                 ConfigError);

    // Bad enum values and spec arguments.
    EXPECT_THROW(requestFromJson(json::parse(
                     R"({"scenario": "x", "analysis": "bogus"})")),
                 ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "trials": 1})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "sweep"})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "sensitivity",
                "metric": "karbon"})")),
        ConfigError);

    // Batches must be non-empty.
    EXPECT_THROW(requestsFromJson(json::parse("[]")),
                 ConfigError);
    EXPECT_THROW(requestsFromJson(json::parse("{}")),
                 ConfigError);
}

TEST(RequestIo, GuardsAgainstLossyNumericConversions)
{
    // JSON numbers are doubles: a seed above 2^53 cannot
    // round-trip, so serialization refuses it outright.
    MonteCarloSpec big_seed;
    big_seed.seed = (std::uint64_t{1} << 53) + 2;
    EXPECT_THROW(
        requestToJson({ScenarioRef::scenario("ga102"),
                       big_seed}),
        ConfigError);

    // Non-integral trial/seed/thread counts must not silently
    // truncate.
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "trials": 10.7})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "seed": -4})")),
        ConfigError);

    // Values past int range (or the sanity caps) are rejected,
    // not wrapped modulo 2^32: 4294967298 must not become "2
    // trials", and 10^10 threads must not become ~1.4 billion.
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "trials": 4294967298})")),
        ConfigError);
    EXPECT_THROW(
        requestFromJson(json::parse(
            R"({"scenario": "x", "analysis": "monte_carlo",
                "threads": 10000000000})")),
        ConfigError);
}

// ------------------------------------------------ catalogs

class CatalogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info = ::testing::UnitTest::GetInstance()
                               ->current_test_info();
        dir_ = std::filesystem::path(::testing::TempDir()) /
               (std::string("ecochip_catalog_") + info->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string
    writeFile(const std::string &name, const std::string &text)
    {
        const auto path = dir_ / name;
        std::ofstream out(path);
        out << text;
        return path.string();
    }

    std::filesystem::path dir_;
};

constexpr const char *kCatalogJson = R"({
    "scenarios": [
        {
            "name": "tiny-soc",
            "description": "two-chiplet catalog scenario",
            "architecture": {
                "name": "tiny",
                "packaging": "rdl_fanout",
                "chiplets": [
                    {"name": "core", "type": "logic",
                     "node_nm": 7, "area_mm2": 60.0},
                    {"name": "cache", "type": "memory",
                     "node_nm": 10, "area_mm2": 30.0}
                ]
            },
            "operational": {"lifetime_years": 3,
                            "avg_power_w": 15.0}
        }
    ]
})";

TEST_F(CatalogTest, LoadFileRegistersScenariosForTheEngine)
{
    const std::string path =
        writeFile("catalog.json", kCatalogJson);

    EngineOptions options;
    options.threads = 2;
    options.registry.loadFile(path);
    AnalysisEngine engine(std::move(options));

    // Builtin and catalog scenarios resolve side by side.
    EXPECT_TRUE(engine.registry().contains("ga102"));
    EXPECT_TRUE(engine.registry().contains("tiny-soc"));

    const BatchReport report = engine.runBatch(
        {{ScenarioRef::scenario("tiny-soc"), EstimateSpec{}}});
    ASSERT_TRUE(report.allOk());
    const CarbonReport &estimate =
        *report.outcomes[0].result->report;
    EXPECT_EQ(report.outcomes[0].result->scenario, "tiny");
    EXPECT_EQ(estimate.chiplets.size(), 2u);
    EXPECT_GT(estimate.operation.co2Kg, 0.0);
}

TEST_F(CatalogTest, BatchFileResolvesItsCatalogRelatively)
{
    writeFile("catalog.json", kCatalogJson);
    const std::string batch_path = writeFile("batch.json", R"({
        "scenarios": "catalog.json",
        "requests": [
            {"scenario": "tiny-soc", "analysis": "estimate"},
            {"scenario": "ga102", "analysis": "cost"}
        ]
    })");

    const BatchFile batch = loadBatchFile(batch_path);
    ASSERT_TRUE(batch.scenarioCatalog.has_value());
    ASSERT_EQ(batch.requests.size(), 2u);

    EngineOptions options;
    options.threads = 2;
    options.registry.loadFile(*batch.scenarioCatalog);
    AnalysisEngine engine(std::move(options));
    const BatchReport report =
        engine.runBatch(batch.requests);
    EXPECT_TRUE(report.allOk());
    EXPECT_TRUE(
        report.outcomes[1].result->cost.has_value());
}

TEST_F(CatalogTest, BrokenCatalogsFailAtLoadTime)
{
    // Typo'd chiplet key: rejected while loading, naming the
    // catalog and the key.
    const std::string bad = writeFile("bad.json", R"({
        "scenarios": [
            {"name": "broken",
             "architecture": {
                 "name": "b",
                 "chiplets": [
                     {"name": "c", "node_nm": 7,
                      "area_m2": 10.0}
                 ]
             }}
        ]
    })");
    ScenarioRegistry registry;
    try {
        registry.loadFile(bad);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad.json"), std::string::npos)
            << what;
        EXPECT_NE(what.find("\"area_m2\""), std::string::npos)
            << what;
    }

    // Duplicate names collide with the builtin catalog.
    const std::string dup = writeFile("dup.json", R"({
        "scenarios": [
            {"name": "ga102",
             "architecture": {
                 "name": "g",
                 "chiplets": [
                     {"name": "c", "node_nm": 7,
                      "area_mm2": 10.0}
                 ]
             }}
        ]
    })");
    ScenarioRegistry builtin_copy = ScenarioRegistry::builtin();
    EXPECT_THROW(builtin_copy.loadFile(dup), ConfigError);

    // design_dir entries fail at load time too when the
    // directory is missing.
    const std::string gone = writeFile("gone.json", R"({
        "scenarios": [
            {"name": "vanished",
             "design_dir": "no/such/dir"}
        ]
    })");
    ScenarioRegistry dir_registry;
    EXPECT_THROW(dir_registry.loadFile(gone), ConfigError);
}

// ------------------------------------------------ thread pool

TEST(ThreadPoolTest, RejectsNonPositiveWorkerCounts)
{
    EXPECT_THROW(ThreadPool(0), ConfigError);
    EXPECT_THROW(AnalysisEngine(0), ConfigError);
    EXPECT_THROW(ThreadPool(-3), ConfigError);
}

TEST(ThreadPoolTest, DrainsEveryPostedTaskBeforeJoining)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        EXPECT_EQ(pool.threadCount(), 3);
        for (int i = 0; i < 100; ++i)
            pool.post([&ran] { ++ran; });
        // Destructor must wait for all 100, not drop the queue.
    }
    EXPECT_EQ(ran.load(), 100);
}

} // namespace
} // namespace ecochip
