/**
 * @file
 * Unit tests for the chiplet/system descriptors.
 */

#include <gtest/gtest.h>

#include "chiplet/chiplet.h"
#include "support/error.h"

namespace ecochip {
namespace {

class ChipletTest : public ::testing::Test
{
  protected:
    TechDb tech_;
};

TEST_F(ChipletTest, FromAreaInvertsAreaModel)
{
    const Chiplet c = Chiplet::fromArea(
        "digital", DesignType::Logic, 7.0, 500.0, tech_);
    EXPECT_NEAR(c.areaMm2(tech_), 500.0, 1e-9);
    EXPECT_DOUBLE_EQ(c.nodeNm, 7.0);
    EXPECT_FALSE(c.reused);
}

TEST_F(ChipletTest, FromAreaRejectsNonPositiveArea)
{
    EXPECT_THROW(Chiplet::fromArea("x", DesignType::Logic, 7.0,
                                   0.0, tech_),
                 ConfigError);
}

TEST_F(ChipletTest, RetargetingGrowsAreaOnLegacyNodes)
{
    const Chiplet c = Chiplet::fromArea(
        "digital", DesignType::Logic, 7.0, 100.0, tech_);
    EXPECT_GT(c.areaAtNodeMm2(tech_, 14.0), 100.0);
    EXPECT_LT(c.areaAtNodeMm2(tech_, 5.0), 100.0);
}

TEST_F(ChipletTest, SystemTotals)
{
    SystemSpec system;
    system.name = "s";
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    system.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 7.0, 50.0, tech_));

    EXPECT_NEAR(system.totalSiliconAreaMm2(tech_), 150.0, 1e-9);
    EXPECT_DOUBLE_EQ(system.totalTransistorsMtr(),
                     system.chiplets[0].transistorsMtr +
                         system.chiplets[1].transistorsMtr);
}

TEST_F(ChipletTest, ChipletLookupByName)
{
    SystemSpec system;
    system.name = "s";
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    EXPECT_EQ(system.chiplet("a").name, "a");
    EXPECT_THROW(system.chiplet("zzz"), ConfigError);
}

TEST_F(ChipletTest, MonolithicPredicates)
{
    SystemSpec one;
    one.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    EXPECT_TRUE(one.isMonolithic());

    SystemSpec two = one;
    two.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 7.0, 50.0, tech_));
    EXPECT_FALSE(two.isMonolithic());

    two.singleDie = true;
    EXPECT_TRUE(two.isMonolithic());
    EXPECT_DOUBLE_EQ(two.monolithicNodeNm(), 7.0);
}

TEST_F(ChipletTest, MonolithicNodeRequiresAgreement)
{
    SystemSpec system;
    system.singleDie = true;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    system.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 10.0, 50.0, tech_));
    EXPECT_THROW(system.monolithicNodeNm(), ConfigError);
}

TEST_F(ChipletTest, MonolithicNodeRejectsChipletSystems)
{
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    system.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 7.0, 50.0, tech_));
    EXPECT_THROW(system.monolithicNodeNm(), ConfigError);
}

TEST_F(ChipletTest, WithNodesRetargetsInOrder)
{
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    system.chiplets.push_back(Chiplet::fromArea(
        "b", DesignType::Memory, 7.0, 50.0, tech_));

    const SystemSpec moved = system.withNodes({10.0, 14.0});
    EXPECT_DOUBLE_EQ(moved.chiplets[0].nodeNm, 10.0);
    EXPECT_DOUBLE_EQ(moved.chiplets[1].nodeNm, 14.0);
    // Content is preserved; only the node moves.
    EXPECT_DOUBLE_EQ(moved.chiplets[0].transistorsMtr,
                     system.chiplets[0].transistorsMtr);
    // Original untouched.
    EXPECT_DOUBLE_EQ(system.chiplets[0].nodeNm, 7.0);
}

TEST_F(ChipletTest, WithNodesValidatesInput)
{
    SystemSpec system;
    system.chiplets.push_back(Chiplet::fromArea(
        "a", DesignType::Logic, 7.0, 100.0, tech_));
    EXPECT_THROW(system.withNodes({7.0, 10.0}), ConfigError);
    EXPECT_THROW(system.withNodes({-7.0}), ConfigError);
}

} // namespace
} // namespace ecochip
