/**
 * @file
 * Unit and behavioural tests for the packaging models (Eqs. 9-11)
 * across all five architectures.
 */

#include <gtest/gtest.h>

#include "core/disaggregate.h"
#include "package/package_model.h"
#include "support/error.h"

namespace ecochip {
namespace {

class PackageTest : public ::testing::Test
{
  protected:
    SystemSpec
    makeSystem(int nc, double area_each = 100.0) const
    {
        return makeUniformSplit("sys", area_each * nc, 7.0, nc,
                                tech_);
    }

    HiResult
    evaluate(PackageParams params, const SystemSpec &system) const
    {
        PackageModel model(tech_, mfg_, params);
        return model.evaluate(system);
    }

    TechDb tech_;
    ManufacturingModel mfg_{tech_};
};

TEST_F(PackageTest, MonolithHasNoHiOverhead)
{
    const HiResult hi =
        evaluate(PackageParams(), makeSystem(1));
    EXPECT_DOUBLE_EQ(hi.totalCo2Kg(), 0.0);
    EXPECT_DOUBLE_EQ(hi.nocPowerW, 0.0);
}

TEST_F(PackageTest, SingleDieFlagSuppressesOverheads)
{
    SystemSpec mono = makeSystem(3);
    mono.singleDie = true;
    const HiResult hi = evaluate(PackageParams(), mono);
    EXPECT_DOUBLE_EQ(hi.totalCo2Kg(), 0.0);
}

TEST_F(PackageTest, RdlCarbonLinearInLayerCount)
{
    const SystemSpec system = makeSystem(3);
    PackageParams pkg;
    pkg.arch = PackagingArch::RdlFanout;

    pkg.rdlLayers = 3;
    const double c3 = evaluate(pkg, system).packageCo2Kg;
    pkg.rdlLayers = 6;
    const double c6 = evaluate(pkg, system).packageCo2Kg;
    pkg.rdlLayers = 9;
    const double c9 = evaluate(pkg, system).packageCo2Kg;
    EXPECT_NEAR(c6 / c3, 2.0, 1e-9);
    EXPECT_NEAR(c9 / c3, 3.0, 1e-9);
}

TEST_F(PackageTest, RdlMatchesEq9ByHand)
{
    const SystemSpec system = makeSystem(2);
    PackageParams pkg;
    pkg.arch = PackagingArch::RdlFanout;

    PackageModel model(tech_, mfg_, pkg);
    const FloorplanResult fp = model.floorplan(system);
    const HiResult hi = model.evaluate(system);

    YieldModel ym(tech_);
    const double yield = ym.rdlYield(fp.areaMm2(), pkg.rdlNodeNm);
    const double expected =
        pkg.rdlLayers * tech_.eplaRdlKwhPerCm2(pkg.rdlNodeNm) *
        (pkg.intensityGPerKwh * 1e-3) * (fp.areaMm2() * 0.01) /
        yield;
    EXPECT_NEAR(hi.packageCo2Kg, expected, 1e-9);
    EXPECT_DOUBLE_EQ(hi.packageYield, yield);
    EXPECT_NEAR(hi.packageAreaMm2, fp.areaMm2(), 1e-9);
}

TEST_F(PackageTest, BridgeCountCoversConnectivity)
{
    PackageParams pkg;
    pkg.arch = PackagingArch::SiliconBridge;
    for (int nc : {2, 3, 5, 8}) {
        const HiResult hi = evaluate(pkg, makeSystem(nc));
        EXPECT_GE(hi.bridgeCount, nc - 1) << "nc=" << nc;
    }
}

TEST_F(PackageTest, LongerBridgeRangeNeedsFewerBridges)
{
    const SystemSpec system = makeSystem(4, 150.0);
    PackageParams pkg;
    pkg.arch = PackagingArch::SiliconBridge;

    pkg.bridgeRangeMm = 1.0;
    const HiResult short_range = evaluate(pkg, system);
    pkg.bridgeRangeMm = 4.0;
    const HiResult long_range = evaluate(pkg, system);
    EXPECT_GT(short_range.bridgeCount, long_range.bridgeCount);
    EXPECT_GT(short_range.totalCo2Kg(), long_range.totalCo2Kg());
}

TEST_F(PackageTest, BridgeBeatsRdlAtTwoChipletsOnly)
{
    // The Fig. 9 crossover.
    PackageParams rdl;
    rdl.arch = PackagingArch::RdlFanout;
    PackageParams emib;
    emib.arch = PackagingArch::SiliconBridge;

    const SystemSpec two = makeSystem(2, 250.0);
    EXPECT_LT(evaluate(emib, two).totalCo2Kg(),
              evaluate(rdl, two).totalCo2Kg());

    const SystemSpec eight = makeSystem(8, 62.5);
    EXPECT_GT(evaluate(emib, eight).totalCo2Kg(),
              evaluate(rdl, eight).totalCo2Kg());
}

TEST_F(PackageTest, InterposersCostMoreThanRdl)
{
    const SystemSpec system = makeSystem(4);
    PackageParams rdl;
    rdl.arch = PackagingArch::RdlFanout;
    PackageParams passive;
    passive.arch = PackagingArch::PassiveInterposer;
    PackageParams active;
    active.arch = PackagingArch::ActiveInterposer;

    const double c_rdl = evaluate(rdl, system).totalCo2Kg();
    const double c_passive =
        evaluate(passive, system).totalCo2Kg();
    const double c_active = evaluate(active, system).totalCo2Kg();
    EXPECT_GT(c_passive, c_rdl);
    EXPECT_GT(c_active, c_passive);
}

TEST_F(PackageTest, PassiveRoutersLiveInChiplets)
{
    // Passive: routers in the chiplets' advanced node -> small
    // routing carbon; active: routers in the legacy interposer ->
    // larger routing carbon (Sec. III-D(2)).
    const SystemSpec system = makeSystem(4);
    PackageParams passive;
    passive.arch = PackagingArch::PassiveInterposer;
    PackageParams active;
    active.arch = PackagingArch::ActiveInterposer;

    const HiResult hp = evaluate(passive, system);
    const HiResult ha = evaluate(active, system);
    EXPECT_GT(ha.routingCo2Kg, hp.routingCo2Kg);
    EXPECT_GT(ha.commAreaMm2, hp.commAreaMm2);
    // Active interposer routers at the legacy node also burn more
    // NoC power.
    EXPECT_GT(ha.nocPowerW, hp.nocPowerW);
}

TEST_F(PackageTest, OlderInterposerNodeIsGreener)
{
    const SystemSpec system = makeSystem(3);
    PackageParams pkg;
    pkg.arch = PackagingArch::ActiveInterposer;

    pkg.interposerNodeNm = 22.0;
    const double advanced = evaluate(pkg, system).totalCo2Kg();
    pkg.interposerNodeNm = 65.0;
    const double legacy = evaluate(pkg, system).totalCo2Kg();
    EXPECT_GT(advanced, legacy);
}

TEST_F(PackageTest, StackedTiersReduce3dOverhead)
{
    // Fig. 9's 3D series: same logic in more tiers -> smaller
    // footprint -> fewer via stacks -> lower CHI, despite worse
    // package yield.
    PackageParams pkg;
    pkg.arch = PackagingArch::Stack3d;

    const double total_area = 400.0;
    double prev_chi = 1e18;
    double prev_yield = 1.1;
    for (int tiers : {2, 3, 4}) {
        const SystemSpec stack = makeUniformSplit(
            "stack", total_area, 7.0, tiers, tech_);
        const HiResult hi = evaluate(pkg, stack);
        EXPECT_LT(hi.totalCo2Kg(), prev_chi);
        EXPECT_LT(hi.packageYield, prev_yield);
        prev_chi = hi.totalCo2Kg();
        prev_yield = hi.packageYield;
    }
}

TEST_F(PackageTest, FinerBondPitchCostsCarbonAndYield)
{
    const SystemSpec stack = makeSystem(3);
    PackageParams pkg;
    pkg.arch = PackagingArch::Stack3d;
    pkg.bondType = BondType::Tsv;

    pkg.tsvPitchUm = 10.0;
    const HiResult fine = evaluate(pkg, stack);
    pkg.tsvPitchUm = 45.0;
    const HiResult coarse = evaluate(pkg, stack);
    EXPECT_GT(fine.bondCount, coarse.bondCount);
    EXPECT_LT(fine.packageYield, coarse.packageYield);
    EXPECT_GT(fine.totalCo2Kg(), coarse.totalCo2Kg());
}

TEST_F(PackageTest, BondTypeEnergyOrdering)
{
    PackageParams pkg;
    pkg.bondType = BondType::Tsv;
    EXPECT_DOUBLE_EQ(pkg.bondEnergyFactor(), 1.0);
    pkg.bondType = BondType::Microbump;
    EXPECT_LT(pkg.bondEnergyFactor(), 1.0);
    pkg.bondType = BondType::HybridBond;
    EXPECT_LT(pkg.bondEnergyFactor(), 0.1);
    // Hybrid bonds are individually far more reliable.
    EXPECT_LT(pkg.bondFailProbability(), 1e-8);
}

TEST_F(PackageTest, PhyOverheadChargedForPlanarPackages)
{
    const SystemSpec system = makeSystem(3);
    for (PackagingArch arch : {PackagingArch::RdlFanout,
                               PackagingArch::SiliconBridge}) {
        PackageParams pkg;
        pkg.arch = arch;
        const HiResult hi = evaluate(pkg, system);
        EXPECT_GT(hi.routingCo2Kg, 0.0) << toString(arch);
        EXPECT_GT(hi.commAreaMm2, 0.0) << toString(arch);
        EXPECT_GT(hi.nocPowerW, 0.0) << toString(arch);
        // PHY is a small IP: its carbon is a sliver of package
        // carbon.
        EXPECT_LT(hi.routingCo2Kg, 0.1 * hi.packageCo2Kg)
            << toString(arch);
    }
}

TEST_F(PackageTest, PackageYieldAlwaysInUnitInterval)
{
    const SystemSpec system = makeSystem(5);
    for (PackagingArch arch :
         {PackagingArch::RdlFanout, PackagingArch::SiliconBridge,
          PackagingArch::PassiveInterposer,
          PackagingArch::ActiveInterposer,
          PackagingArch::Stack3d}) {
        PackageParams pkg;
        pkg.arch = arch;
        const HiResult hi = evaluate(pkg, system);
        EXPECT_GT(hi.packageYield, 0.0) << toString(arch);
        EXPECT_LE(hi.packageYield, 1.0) << toString(arch);
        EXPECT_GT(hi.totalCo2Kg(), 0.0) << toString(arch);
    }
}

TEST_F(PackageTest, ParameterValidation)
{
    PackageParams bad;
    bad.rdlLayers = 0;
    EXPECT_THROW(PackageModel(tech_, mfg_, bad), ConfigError);
    bad = PackageParams();
    bad.bridgeEmbedYield = 1.5;
    EXPECT_THROW(PackageModel(tech_, mfg_, bad), ConfigError);
    bad = PackageParams();
    bad.tsvPitchUm = 0.0;
    bad.bondType = BondType::Tsv;
    EXPECT_THROW(PackageModel(tech_, mfg_, bad), ConfigError);
    bad = PackageParams();
    bad.intensityGPerKwh = -1.0;
    EXPECT_THROW(PackageModel(tech_, mfg_, bad), ConfigError);
    bad = PackageParams();
    bad.repeaterAreaFraction = 1.0;
    EXPECT_THROW(PackageModel(tech_, mfg_, bad), ConfigError);

    PackageModel ok(tech_, mfg_, PackageParams());
    SystemSpec empty;
    EXPECT_THROW(ok.evaluate(empty), ConfigError);
}

TEST_F(PackageTest, ArchStringRoundTrip)
{
    for (PackagingArch arch :
         {PackagingArch::RdlFanout, PackagingArch::SiliconBridge,
          PackagingArch::PassiveInterposer,
          PackagingArch::ActiveInterposer,
          PackagingArch::Stack3d}) {
        EXPECT_EQ(packagingArchFromString(toString(arch)), arch);
    }
    EXPECT_EQ(packagingArchFromString("emib"),
              PackagingArch::SiliconBridge);
    EXPECT_THROW(packagingArchFromString("wirebond"),
                 ConfigError);

    for (BondType type : {BondType::Tsv, BondType::Microbump,
                          BondType::HybridBond}) {
        EXPECT_EQ(bondTypeFromString(toString(type)), type);
    }
    EXPECT_THROW(bondTypeFromString("glue"), ConfigError);
}

TEST_F(PackageTest, CleanerPackagingFabLowersCarbon)
{
    const SystemSpec system = makeSystem(3);
    PackageParams coal;
    coal.intensityGPerKwh = 700.0;
    PackageParams wind;
    wind.intensityGPerKwh = 11.0;
    EXPECT_GT(evaluate(coal, system).packageCo2Kg,
              evaluate(wind, system).packageCo2Kg);
}

} // namespace
} // namespace ecochip
