/**
 * @file
 * Unit tests for the operational-CFP model (Eqs. 3 and 14).
 */

#include <gtest/gtest.h>

#include "operation/operational_model.h"
#include "support/error.h"
#include "support/units.h"

namespace ecochip {
namespace {

class OperationTest : public ::testing::Test
{
  protected:
    SystemSpec
    makeSystem(double node_nm, double mtr = 1000.0) const
    {
        SystemSpec system;
        Chiplet c;
        c.name = "c";
        c.type = DesignType::Logic;
        c.nodeNm = node_nm;
        c.transistorsMtr = mtr;
        system.chiplets.push_back(c);
        return system;
    }

    TechDb tech_;
};

TEST_F(OperationTest, ChipletPowerMatchesEq14ByHand)
{
    OperatingSpec spec;
    spec.switchingActivity = 0.1;
    spec.avgFrequencyHz = 1e9;
    OperationalModel model(tech_, spec);

    const SystemSpec system = makeSystem(7.0, 1000.0);
    const Chiplet &c = system.chiplets.front();

    const double vdd = tech_.supplyVoltageV(7.0);
    const double leak_w =
        vdd * tech_.leakageMaPerMtr(7.0) * 1e-3 * 1000.0;
    const double cap_f =
        1000.0 * 1e6 * tech_.effCapFfPerTransistor(7.0) * 1e-15;
    const double dyn_w = 0.1 * cap_f * vdd * vdd * 1e9;
    EXPECT_NEAR(model.chipletPowerW(c), leak_w + dyn_w, 1e-9);
}

TEST_F(OperationTest, EnergyAndCarbonFollowDutyAndLifetime)
{
    OperatingSpec spec;
    spec.lifetimeYears = 2.0;
    spec.dutyCycle = 0.10;
    spec.avgPowerW = 130.0;
    OperationalModel model(tech_, spec);

    const OperationalBreakdown b =
        model.evaluate(makeSystem(7.0));
    const double expected_kwh =
        130.0 * 2.0 * units::kHoursPerYear * 0.10 * 1e-3;
    EXPECT_NEAR(b.lifetimeEnergyKwh, expected_kwh, 1e-9);
    EXPECT_NEAR(b.co2Kg, expected_kwh * 0.7, 1e-9);
    EXPECT_DOUBLE_EQ(b.avgPowerW, 130.0);
}

TEST_F(OperationTest, Ga102AnchorEuseNear228kWh)
{
    // Calibration check for the paper's GA102 anchor.
    OperatingSpec spec;
    spec.lifetimeYears = 2.0;
    spec.dutyCycle = 0.10;
    spec.avgPowerW = 130.0;
    OperationalModel model(tech_, spec);
    EXPECT_NEAR(model.evaluate(makeSystem(7.0)).lifetimeEnergyKwh,
                228.0, 5.0);
}

TEST_F(OperationTest, BatteryPathBypassesPowerModel)
{
    OperatingSpec spec;
    spec.lifetimeYears = 3.0;
    spec.annualEnergyKwh = 0.8;
    OperationalModel model(tech_, spec);

    const OperationalBreakdown b =
        model.evaluate(makeSystem(7.0));
    EXPECT_NEAR(b.lifetimeEnergyKwh, 2.4, 1e-9);
    EXPECT_NEAR(b.co2Kg, 2.4 * 0.7, 1e-9);
}

TEST_F(OperationTest, BatteryPathStillChargesHiPower)
{
    OperatingSpec spec;
    spec.lifetimeYears = 3.0;
    spec.dutyCycle = 0.15;
    spec.annualEnergyKwh = 0.8;
    OperationalModel model(tech_, spec);

    const double base =
        model.evaluate(makeSystem(7.0)).co2Kg;
    const double with_noc =
        model.evaluate(makeSystem(7.0), 0.5).co2Kg;
    EXPECT_GT(with_noc, base);
}

TEST_F(OperationTest, LegacyNodeBurnsMorePower)
{
    // Same content at an older node draws more power: higher Vdd
    // and capacitance -- why HI raises Cop (Sec. V-A(4)).
    OperationalModel model(tech_, OperatingSpec{});
    EXPECT_GT(model.chipletPowerW(
                  makeSystem(14.0).chiplets.front()),
              model.chipletPowerW(
                  makeSystem(7.0).chiplets.front()));
}

TEST_F(OperationTest, SystemPowerSumsChipletsPlusExtra)
{
    OperationalModel model(tech_, OperatingSpec{});
    SystemSpec two = makeSystem(7.0, 500.0);
    Chiplet second = two.chiplets.front();
    second.name = std::string("d");
    two.chiplets.push_back(second);

    const double single = model.chipletPowerW(two.chiplets[0]);
    EXPECT_NEAR(model.systemPowerW(two, 3.0), 2.0 * single + 3.0,
                1e-9);
}

TEST_F(OperationTest, CarbonScalesWithUseIntensity)
{
    OperatingSpec coal;
    coal.useIntensityGPerKwh = 700.0;
    OperatingSpec wind = coal;
    wind.useIntensityGPerKwh = 11.0;

    const SystemSpec system = makeSystem(7.0);
    const double c_coal =
        OperationalModel(tech_, coal).evaluate(system).co2Kg;
    const double c_wind =
        OperationalModel(tech_, wind).evaluate(system).co2Kg;
    EXPECT_NEAR(c_coal / c_wind, 700.0 / 11.0, 1e-6);
}

TEST_F(OperationTest, SpecValidation)
{
    OperatingSpec bad;
    bad.lifetimeYears = 0.0;
    EXPECT_THROW(OperationalModel(tech_, bad), ConfigError);
    bad = OperatingSpec();
    bad.dutyCycle = 1.5;
    EXPECT_THROW(OperationalModel(tech_, bad), ConfigError);
    bad = OperatingSpec();
    bad.switchingActivity = 0.0;
    EXPECT_THROW(OperationalModel(tech_, bad), ConfigError);
    bad = OperatingSpec();
    bad.avgPowerW = -5.0;
    EXPECT_THROW(OperationalModel(tech_, bad), ConfigError);
    bad = OperatingSpec();
    bad.annualEnergyKwh = 0.0;
    EXPECT_THROW(OperationalModel(tech_, bad), ConfigError);

    OperationalModel ok(tech_, OperatingSpec{});
    EXPECT_THROW(ok.systemPowerW(makeSystem(7.0), -1.0),
                 ConfigError);
}

} // namespace
} // namespace ecochip
