/**
 * @file
 * `eco_chip` command-line tool -- the C++ equivalent of the
 * reference artifact's `python3 src/ECO_chip.py --design_dir ...`
 * workflow.
 *
 * Usage:
 *   eco_chip --design_dir data/testcases/GA102 [options]
 *
 * Options:
 *   --design_dir DIR   design directory with architecture.json
 *                      (+ optional packageC/designC/operationalC)
 *   --node_list LIST   comma-separated nodes (e.g. "7,10,14") to
 *                      explore across all chiplets; prints the
 *                      CFP of every combination
 *   --cost             also print the dollar-cost breakdown
 *   --json FILE        write the full carbon report as JSON
 *   --markdown FILE    write a human-readable markdown report
 *   --help             this text
 */

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "core/ecochip.h"
#include "core/explorer.h"
#include "io/config_loader.h"
#include "io/report_writer.h"
#include "support/error.h"
#include "support/table_printer.h"

namespace {

using namespace ecochip;

struct CliOptions
{
    std::string designDir;
    std::vector<double> nodeList;
    bool showCost = false;
    std::optional<std::string> jsonPath;
    std::optional<std::string> markdownPath;
};

void
printUsage(std::ostream &os)
{
    os << "usage: eco_chip --design_dir DIR [--node_list 7,10,14]"
          " [--cost] [--json FILE]\n";
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> std::string {
            requireConfig(i + 1 < argc,
                          arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--design_dir") {
            opts.designDir = next_value();
        } else if (arg == "--node_list") {
            std::stringstream ss(next_value());
            std::string token;
            while (std::getline(ss, token, ',')) {
                double node = 0.0;
                std::size_t consumed = 0;
                try {
                    node = std::stod(token, &consumed);
                } catch (const std::exception &) {
                    throw ConfigError("invalid node value: " +
                                      token);
                }
                requireConfig(consumed == token.size(),
                              "invalid node value: " + token);
                requireConfig(node > 0.0,
                              "node must be positive");
                opts.nodeList.push_back(node);
            }
            requireConfig(!opts.nodeList.empty(),
                          "--node_list is empty");
        } else if (arg == "--cost") {
            opts.showCost = true;
        } else if (arg == "--json") {
            opts.jsonPath = next_value();
        } else if (arg == "--markdown") {
            opts.markdownPath = next_value();
        } else if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            std::exit(0);
        } else {
            throw ConfigError("unknown option: " + arg);
        }
    }
    requireConfig(!opts.designDir.empty(),
                  "--design_dir is required");
    return opts;
}

void
printReport(const SystemSpec &system, const CarbonReport &report)
{
    std::cout << "System: " << system.name << " ("
              << system.chiplets.size()
              << (system.isMonolithic() ? " blocks, monolithic"
                                        : " chiplets")
              << ")\n\n";

    TablePrinter per_chiplet(
        {"chiplet", "node_nm", "area_mm2", "yield", "mfg_kgCO2",
         "design_kgCO2"});
    for (const auto &c : report.chiplets) {
        per_chiplet.addRow(c.name,
                           {c.nodeNm, c.areaMm2, c.yield,
                            c.mfgCo2Kg, c.designCo2Kg});
    }
    per_chiplet.print(std::cout);

    TablePrinter summary({"component", "kgCO2"});
    summary.addRow("manufacturing (Cmfg)", {report.mfgCo2Kg});
    summary.addRow("package (Cpackage)",
                   {report.hi.packageCo2Kg});
    summary.addRow("inter-die comm (Cmfg,comm)",
                   {report.hi.routingCo2Kg});
    summary.addRow("design, amortized (Cdes)",
                   {report.designCo2Kg});
    summary.addRow("embodied (Cemb)", {report.embodiedCo2Kg()});
    summary.addRow("operational (Cop x lifetime)",
                   {report.operation.co2Kg});
    summary.addRow("total (Ctot)", {report.totalCo2Kg()});
    std::cout << '\n';
    summary.print(std::cout);
}

int
run(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);

    TechDb tech;
    const DesignBundle bundle =
        loadDesignDirectory(opts.designDir, tech);
    EcoChip estimator(bundle.config, tech);

    const CarbonReport report =
        estimator.estimate(bundle.system);
    printReport(bundle.system, report);

    if (!opts.nodeList.empty()) {
        std::cout << "\nTechnology-space exploration over {";
        for (std::size_t i = 0; i < opts.nodeList.size(); ++i)
            std::cout << (i ? "," : "") << opts.nodeList[i];
        std::cout << "} nm:\n";

        TechSpaceExplorer explorer(estimator);
        const auto points =
            explorer.sweep(bundle.system, opts.nodeList);
        TablePrinter table(
            {"nodes", "Cmfg_kg", "CHI_kg", "Cdes_kg", "Cemb_kg",
             "Cop_kg", "Ctot_kg"});
        for (const auto &p : points) {
            table.addRow(p.label(),
                         {p.report.mfgCo2Kg,
                          p.report.hi.totalCo2Kg(),
                          p.report.designCo2Kg,
                          p.report.embodiedCo2Kg(),
                          p.report.operation.co2Kg,
                          p.report.totalCo2Kg()});
        }
        table.print(std::cout);
        const auto &best =
            TechSpaceExplorer::bestByEmbodied(points);
        std::cout << "lowest embodied CFP: " << best.label()
                  << " at " << best.report.embodiedCo2Kg()
                  << " kg CO2\n";
    }

    if (opts.showCost) {
        const CostBreakdown cost = estimator.cost(bundle.system);
        std::cout << "\nDollar cost per part:\n";
        TablePrinter table({"component", "usd"});
        table.addRow("silicon dies", {cost.dieUsd});
        table.addRow("package", {cost.packageUsd});
        table.addRow("assembly+test", {cost.assemblyUsd});
        table.addRow("NRE, amortized", {cost.nreUsd});
        table.addRow("total", {cost.totalUsd()});
        table.print(std::cout);
    }

    if (opts.jsonPath) {
        json::writeFile(reportToJson(report), *opts.jsonPath);
        std::cout << "\nreport written to " << *opts.jsonPath
                  << "\n";
    }

    if (opts.markdownPath) {
        std::ofstream out(*opts.markdownPath);
        requireConfig(static_cast<bool>(out),
                      "cannot write markdown report: " +
                          *opts.markdownPath);
        writeMarkdownReport(out, bundle.system, report,
                            estimator.config());
        std::cout << "markdown report written to "
                  << *opts.markdownPath << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const ecochip::Error &e) {
        std::cerr << "eco_chip: " << e.what() << "\n";
        printUsage(std::cerr);
        return 1;
    }
}
