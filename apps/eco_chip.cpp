/**
 * @file
 * `eco_chip` command-line tool -- the C++ equivalent of the
 * reference artifact's `python3 src/ECO_chip.py --design_dir ...`
 * workflow, built on the `AnalysisSession` API. Every flag is
 * documented with runnable examples in `docs/cli.md`.
 *
 * Usage:
 *   eco_chip --design_dir data/testcases/GA102 [options]
 *   eco_chip --scenario ga102 [options]
 *   eco_chip --batch requests.json [--engine_threads N] [--stream]
 *   eco_chip --search spec.json [--json FILE] [--report FILE]
 *            [--expand FILE] [--engine_threads N]
 *   eco_chip --shard requests.json --shards K [--json FILE]
 *   eco_chip --shard_worker sub_batch.json --json report.json
 *   eco_chip --coordinate requests.json --hosts hosts.json
 *            [--retries N] [--shard_timeout S] [--chunk_size N]
 *            [--progress] [--resume] [--abort_after_failures N]
 *   eco_chip --serve --socket PATH [--cache_dir DIR]
 *            [--cache_entries N] [--engine_threads N]
 *   eco_chip --connect PATH (--batch FILE | --stats | --shutdown)
 *
 * Options:
 *   --design_dir DIR   design directory with architecture.json
 *                      (+ optional packageC/designC/operationalC)
 *   --scenario NAME    named scenario from the built-in registry
 *                      (see --list_scenarios)
 *   --batch FILE       run a declarative request batch on the
 *                      async AnalysisEngine; one line of status
 *                      per request, exit 1 if any request failed
 *   --stream           with --batch: emit one NDJSON line per
 *                      request on stdout, in completion order
 *   --search FILE      run a design-space search spec: expand a
 *                      generator template into scenario points
 *                      and drive them through the engine with
 *                      the spec's strategy (exhaustive / greedy /
 *                      annealing -- see docs/search.md)
 *   --report FILE      with --search: write the underlying
 *                      BatchReport of the evaluated requests;
 *                      for exhaustive search, byte-identical to
 *                      --batch over the --expand file
 *   --expand FILE      with --search: write the hand-expanded
 *                      request list as a --batch file (every
 *                      point of the space, odometer order)
 *   --shard FILE       split a batch across --shards worker
 *                      processes and merge their reports; the
 *                      merged BatchReport is byte-identical to
 *                      the --batch run
 *   --shards K         worker process count for --shard
 *                      (default 2; capped at the number of
 *                      distinct scenario bindings)
 *   --shard_dir DIR    keep sub-batch/report files in DIR
 *                      instead of a temp directory
 *   --shard_worker F   run one sub-batch and write its
 *                      BatchReport JSON to the --json path
 *                      (what --shard fork/execs per shard)
 *   --coordinate FILE  pull-dispatch a batch's work chunks onto
 *                      the hosts of a --hosts manifest (local or
 *                      command transports), tail each worker's
 *                      NDJSON event stream, retry failures and
 *                      stragglers, and merge incrementally;
 *                      byte-identical to --batch
 *   --hosts FILE       hosts.json manifest for --coordinate
 *                      (host name, slots, optional command
 *                      template -- see docs/distributed.md)
 *   --retries N        re-dispatches allowed per shard before
 *                      the coordinated run fails (default 2)
 *   --shard_timeout S  straggler deadline in seconds: a shard
 *                      dispatch running longer is cancelled and
 *                      re-dispatched (default: no deadline)
 *   --chunk_size N     with --coordinate: target requests per
 *                      work chunk (whole scenario bindings;
 *                      default: ~3 chunks per host slot)
 *   --progress         with --coordinate: live per-host
 *                      in-flight/done counters and requests/s
 *                      on stderr as events arrive
 *   --resume           with --coordinate --shard_dir: replay the
 *                      outcome journal of a killed run and only
 *                      dispatch the requests it never finished
 *   --abort_after_failures N
 *                      with --coordinate: once N requests have
 *                      failed, cancel undispatched chunks; the
 *                      never-run requests report synthetic
 *                      "aborted" errors (and stay out of the
 *                      journal, so --resume can finish them)
 *   --serve            run the analysis server: accept request
 *                      lines over a Unix-domain socket and answer
 *                      stream-event lines on a warm engine (see
 *                      docs/serving.md)
 *   --socket PATH      the Unix-domain socket --serve binds and
 *                      --connect dials
 *   --cache_dir DIR    with --serve: persist results in a
 *                      content-addressed cache under DIR, so a
 *                      repeated request answers without
 *                      re-evaluating
 *   --cache_entries N  with --cache_dir: keep at most N cached
 *                      results (LRU eviction; default unbounded)
 *   --connect PATH     client mode: submit a --batch file to the
 *                      server on PATH (NDJSON events on stdout,
 *                      summary on stderr), or send --stats /
 *                      --shutdown
 *   --stats            with --connect: print the server's
 *                      counters (served/cache/contexts) and exit
 *   --shutdown         with --connect: ask the server to drain
 *                      gracefully and exit
 *   --engine_threads N engine worker threads for --batch /
 *                      per-process for --shard/--shard_worker /
 *                      the --serve engine pool
 *                      (default: one per hardware thread;
 *                      results are bit-identical at any count)
 *   --scenarios FILE   load a user scenario catalog (JSON) into
 *                      the registry before resolving names
 *   --list_scenarios   print the scenario catalog (and any
 *                      loaded generator templates with their
 *                      axis and point counts) and exit
 *   --node_list LIST   comma-separated nodes (e.g. "7,10,14") to
 *                      explore across all chiplets; prints the
 *                      CFP of every combination
 *   --montecarlo N     also run N Monte-Carlo trials
 *   --threads T        batch Monte-Carlo trials over T threads
 *   --cost             also print the dollar-cost breakdown
 *   --json FILE        write results as JSON (for batch modes:
 *                      the BatchReport document)
 *   --markdown FILE    write all analysis results as markdown
 *   --help             this text
 */

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "engine/analysis_engine.h"
#include "engine/shard_coordinator.h"
#include "engine/shard_runner.h"
#include "io/batch_report_io.h"
#include "io/event_journal_io.h"
#include "io/host_manifest_io.h"
#include "io/request_io.h"
#include "io/result_writer.h"
#include "io/search_io.h"
#include "json/ondemand.h"
#include "search/search_driver.h"
#include "server/analysis_server.h"
#include "server/server_client.h"
#include "session/analysis_session.h"
#include "support/error.h"
#include "support/table_printer.h"

namespace {

using namespace ecochip;

struct CliOptions
{
    std::string designDir;
    std::string scenario;
    std::string batchPath;
    std::string searchPath;
    std::string searchReportPath;
    std::string searchExpandPath;
    std::string shardPath;
    std::string shardWorkerPath;
    std::string shardDir;
    std::string scenariosPath;
    std::string coordinatePath;
    std::string hostsPath;
    bool serve = false;
    std::string socketPath;
    std::string cacheDir;
    std::string connectPath;
    bool connectStats = false;
    bool connectShutdown = false;
    bool listScenarios = false;
    bool stream = false;

    /** Unset means an unbounded result cache. */
    std::optional<int> cacheEntries;

    /** Unset means the default of 2 worker processes. */
    std::optional<int> shards;

    /** Unset means the coordinator default of 2 re-dispatches. */
    std::optional<int> retries;

    /** Unset means no straggler deadline. */
    std::optional<double> shardTimeout;

    /** Unset means the coordinator's automatic chunk target. */
    std::optional<int> chunkSize;

    /** Live coordinator progress on stderr. */
    bool progress = false;

    /** Replay a previous run's outcome journal. */
    bool resume = false;

    /** Unset means no early-abort policy. */
    std::optional<int> abortAfterFailures;

    /** Unset means one worker per hardware thread. */
    std::optional<int> engineThreads;
    std::vector<double> nodeList;
    int monteCarloTrials = 0;
    int threads = 1;
    bool showCost = false;
    std::optional<std::string> jsonPath;
    std::optional<std::string> markdownPath;
};

void
printUsage(std::ostream &os)
{
    os << "usage: eco_chip (--design_dir DIR | --scenario NAME |"
          " --batch FILE |\n"
          "    --search FILE [--report FILE] [--expand FILE] |\n"
          "    --shard FILE --shards K | --shard_worker FILE |\n"
          "    --coordinate FILE --hosts HOSTS.json |\n"
          "    --serve --socket PATH | --connect PATH)\n"
          "    [--node_list 7,10,14] [--montecarlo N]"
          " [--threads T] [--cost]\n"
          "    [--engine_threads N] [--scenarios FILE]"
          " [--json FILE]\n"
          "    [--markdown FILE] [--list_scenarios] [--stream]\n"
          "    [--shard_dir DIR] [--retries N]"
          " [--shard_timeout S]\n"
          "    [--chunk_size N] [--progress] [--resume]"
          " [--abort_after_failures N]\n"
          "    [--cache_dir DIR] [--cache_entries N]"
          " [--stats] [--shutdown]\n"
          "see docs/cli.md, docs/search.md, docs/distributed.md,"
          " and docs/serving.md for the full flag reference\n";
}

void
printScenarios(std::ostream &os,
               const ScenarioRegistry &registry)
{
    os << "available scenarios:\n";
    for (const auto &scenario : registry.scenarios()) {
        os << "  " << scenario.name << "\n      "
           << scenario.description << "\n";
    }
    if (registry.generators().empty())
        return;
    os << "generator templates (points named "
          "<generator>/<axis>=<value>/..., see docs/search.md):\n";
    for (const auto &generator : registry.generators()) {
        const ScenarioSpace space(generator);
        os << "  " << generator.name << "/...\n      "
           << generator.description << "\n      "
           << generator.axes.size() << " axis(es), "
           << space.size() << " points\n";
    }
}

int
parseIntAtLeast(const std::string &arg, const std::string &token,
                int min)
{
    int value = 0;
    try {
        std::size_t consumed = 0;
        value = std::stoi(token, &consumed);
        requireConfig(consumed == token.size(), "trailing junk");
    } catch (const std::exception &) {
        throw ConfigError("invalid value for " + arg + ": " +
                          token);
    }
    requireConfig(value >= min,
                  arg + (min == 1 ? " must be positive"
                                  : " must be >= " +
                                        std::to_string(min)));
    return value;
}

int
parsePositiveInt(const std::string &arg, const std::string &token)
{
    return parseIntAtLeast(arg, token, 1);
}

int
parseNonNegativeInt(const std::string &arg,
                    const std::string &token)
{
    return parseIntAtLeast(arg, token, 0);
}

double
parsePositiveDouble(const std::string &arg,
                    const std::string &token)
{
    double value = 0.0;
    try {
        std::size_t consumed = 0;
        value = std::stod(token, &consumed);
        requireConfig(consumed == token.size(), "trailing junk");
    } catch (const std::exception &) {
        throw ConfigError("invalid value for " + arg + ": " +
                          token);
    }
    requireConfig(value > 0.0, arg + " must be positive");
    return value;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> std::string {
            requireConfig(i + 1 < argc,
                          arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--design_dir") {
            opts.designDir = next_value();
        } else if (arg == "--scenario") {
            opts.scenario = next_value();
        } else if (arg == "--batch") {
            opts.batchPath = next_value();
        } else if (arg == "--stream") {
            opts.stream = true;
        } else if (arg == "--search") {
            opts.searchPath = next_value();
        } else if (arg == "--report") {
            opts.searchReportPath = next_value();
        } else if (arg == "--expand") {
            opts.searchExpandPath = next_value();
        } else if (arg == "--shard") {
            opts.shardPath = next_value();
        } else if (arg == "--shards") {
            opts.shards = parsePositiveInt(arg, next_value());
        } else if (arg == "--shard_dir") {
            opts.shardDir = next_value();
        } else if (arg == "--shard_worker") {
            opts.shardWorkerPath = next_value();
        } else if (arg == "--coordinate") {
            opts.coordinatePath = next_value();
        } else if (arg == "--hosts") {
            opts.hostsPath = next_value();
        } else if (arg == "--retries") {
            opts.retries =
                parseNonNegativeInt(arg, next_value());
        } else if (arg == "--shard_timeout") {
            opts.shardTimeout =
                parsePositiveDouble(arg, next_value());
        } else if (arg == "--chunk_size") {
            opts.chunkSize = parsePositiveInt(arg, next_value());
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--abort_after_failures") {
            opts.abortAfterFailures =
                parsePositiveInt(arg, next_value());
        } else if (arg == "--serve") {
            opts.serve = true;
        } else if (arg == "--socket") {
            opts.socketPath = next_value();
        } else if (arg == "--cache_dir") {
            opts.cacheDir = next_value();
        } else if (arg == "--cache_entries") {
            opts.cacheEntries =
                parsePositiveInt(arg, next_value());
        } else if (arg == "--connect") {
            opts.connectPath = next_value();
        } else if (arg == "--stats") {
            opts.connectStats = true;
        } else if (arg == "--shutdown") {
            opts.connectShutdown = true;
        } else if (arg == "--engine_threads") {
            opts.engineThreads =
                parsePositiveInt(arg, next_value());
        } else if (arg == "--scenarios") {
            opts.scenariosPath = next_value();
        } else if (arg == "--list_scenarios") {
            opts.listScenarios = true;
        } else if (arg == "--node_list") {
            std::stringstream ss(next_value());
            std::string token;
            while (std::getline(ss, token, ',')) {
                double node = 0.0;
                std::size_t consumed = 0;
                try {
                    node = std::stod(token, &consumed);
                } catch (const std::exception &) {
                    throw ConfigError("invalid node value: " +
                                      token);
                }
                requireConfig(consumed == token.size(),
                              "invalid node value: " + token);
                requireConfig(node > 0.0,
                              "node must be positive");
                opts.nodeList.push_back(node);
            }
            requireConfig(!opts.nodeList.empty(),
                          "--node_list is empty");
        } else if (arg == "--montecarlo") {
            opts.monteCarloTrials =
                parsePositiveInt(arg, next_value());
        } else if (arg == "--threads") {
            opts.threads = parsePositiveInt(arg, next_value());
        } else if (arg == "--cost") {
            opts.showCost = true;
        } else if (arg == "--json") {
            opts.jsonPath = next_value();
        } else if (arg == "--markdown") {
            opts.markdownPath = next_value();
        } else if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            std::exit(0);
        } else {
            throw ConfigError("unknown option: " + arg);
        }
    }
    const bool batch_mode = !opts.batchPath.empty() ||
                            !opts.searchPath.empty() ||
                            !opts.shardPath.empty() ||
                            !opts.shardWorkerPath.empty() ||
                            !opts.coordinatePath.empty() ||
                            opts.serve ||
                            !opts.connectPath.empty();
    // --connect reuses --batch as its request source, so the
    // pair counts as one source, not two.
    const int sources =
        (opts.designDir.empty() ? 0 : 1) +
        (opts.scenario.empty() ? 0 : 1) +
        (!opts.batchPath.empty() && opts.connectPath.empty()
             ? 1
             : 0) +
        (opts.searchPath.empty() ? 0 : 1) +
        (opts.shardPath.empty() ? 0 : 1) +
        (opts.shardWorkerPath.empty() ? 0 : 1) +
        (opts.coordinatePath.empty() ? 0 : 1) +
        (opts.serve ? 1 : 0) +
        (opts.connectPath.empty() ? 0 : 1);
    requireConfig(sources == 1 ||
                      (sources == 0 && opts.listScenarios),
                  "exactly one of --design_dir / --scenario / "
                  "--batch / --search / --shard / "
                  "--shard_worker / --coordinate / --serve / "
                  "--connect is required");
    requireConfig(opts.searchReportPath.empty() ||
                      !opts.searchPath.empty(),
                  "--report writes a search's BatchReport; it "
                  "requires --search");
    requireConfig(opts.searchExpandPath.empty() ||
                      !opts.searchPath.empty(),
                  "--expand writes a search's hand-expanded "
                  "request list; it requires --search");
    requireConfig(!batch_mode ||
                      (opts.nodeList.empty() &&
                       opts.monteCarloTrials == 0 &&
                       !opts.showCost && opts.threads == 1),
                  "batch modes take their analyses from the "
                  "request file; --node_list/--montecarlo/"
                  "--threads/--cost do not apply");
    requireConfig(!opts.engineThreads ||
                      (batch_mode && opts.connectPath.empty()),
                  "--engine_threads sizes an engine pool; it "
                  "requires --batch, --shard, --shard_worker, "
                  "--coordinate, or --serve");
    requireConfig(!opts.stream || (!opts.batchPath.empty() &&
                                   opts.connectPath.empty()),
                  "--stream emits batch results as NDJSON; it "
                  "requires --batch (--connect always streams)");
    requireConfig(!opts.serve || !opts.socketPath.empty(),
                  "--serve listens on a Unix-domain socket; "
                  "--socket PATH is required");
    requireConfig(opts.socketPath.empty() || opts.serve,
                  "--socket names the --serve listening path; "
                  "it requires --serve");
    requireConfig(opts.cacheDir.empty() || opts.serve,
                  "--cache_dir places the server's result "
                  "cache; it requires --serve");
    requireConfig(!opts.cacheEntries || !opts.cacheDir.empty(),
                  "--cache_entries bounds the result cache; it "
                  "requires --cache_dir");
    requireConfig(!opts.serve ||
                      (!opts.jsonPath && !opts.markdownPath),
                  "--serve answers over the socket; --json/"
                  "--markdown do not apply");
    requireConfig(opts.connectPath.empty() ||
                      (!opts.batchPath.empty() ? 1 : 0) +
                              (opts.connectStats ? 1 : 0) +
                              (opts.connectShutdown ? 1 : 0) ==
                          1,
                  "--connect needs exactly one action: "
                  "--batch FILE, --stats, or --shutdown");
    requireConfig((!opts.connectStats &&
                   !opts.connectShutdown) ||
                      !opts.connectPath.empty(),
                  "--stats/--shutdown are control verbs sent to "
                  "a server; they require --connect");
    requireConfig(opts.scenariosPath.empty() ||
                      opts.connectPath.empty(),
                  "--scenarios loads the serving catalog; pass "
                  "it to --serve, not --connect");
    requireConfig(!opts.shards || !opts.shardPath.empty(),
                  "--shards sizes the worker-process fleet; it "
                  "requires --shard");
    requireConfig(opts.shardDir.empty() ||
                      !opts.shardPath.empty() ||
                      !opts.coordinatePath.empty(),
                  "--shard_dir keeps shard scratch files; it "
                  "requires --shard or --coordinate");
    requireConfig(opts.coordinatePath.empty() ||
                      !opts.hostsPath.empty(),
                  "--coordinate dispatches shards onto a host "
                  "manifest; --hosts HOSTS.json is required");
    requireConfig(opts.hostsPath.empty() ||
                      !opts.coordinatePath.empty(),
                  "--hosts names the coordinator's host "
                  "manifest; it requires --coordinate");
    requireConfig((!opts.retries && !opts.shardTimeout) ||
                      !opts.coordinatePath.empty(),
                  "--retries/--shard_timeout tune the shard "
                  "coordinator; they require --coordinate");
    requireConfig((!opts.chunkSize && !opts.progress &&
                   !opts.resume && !opts.abortAfterFailures) ||
                      !opts.coordinatePath.empty(),
                  "--chunk_size/--progress/--resume/"
                  "--abort_after_failures tune the dynamic "
                  "coordinator; they require --coordinate");
    requireConfig(!opts.resume || !opts.shardDir.empty(),
                  "--resume replays the outcome journal of a "
                  "previous run; it requires --shard_dir");
    requireConfig(opts.shardWorkerPath.empty() ||
                      opts.jsonPath.has_value(),
                  "--shard_worker writes its BatchReport to the "
                  "--json path; --json FILE is required");
    requireConfig(!opts.markdownPath ||
                      (opts.searchPath.empty() &&
                       opts.shardPath.empty() &&
                       opts.shardWorkerPath.empty() &&
                       opts.coordinatePath.empty() &&
                       opts.connectPath.empty()),
                  "--markdown applies to --design_dir/--scenario/"
                  "--batch runs, not search, shard, or server "
                  "modes");
    requireConfig(opts.threads == 1 || opts.monteCarloTrials > 0,
                  "--threads batches Monte-Carlo trials; it "
                  "requires --montecarlo");
    return opts;
}

void
printReport(const SystemSpec &system, const CarbonReport &report)
{
    std::cout << "System: " << system.name << " ("
              << system.chiplets.size()
              << (system.isMonolithic() ? " blocks, monolithic"
                                        : " chiplets")
              << ")\n\n";

    TablePrinter per_chiplet(
        {"chiplet", "node_nm", "area_mm2", "yield", "mfg_kgCO2",
         "design_kgCO2"});
    for (const auto &c : report.chiplets) {
        per_chiplet.addRow(c.name,
                           {c.nodeNm, c.areaMm2, c.yield,
                            c.mfgCo2Kg, c.designCo2Kg});
    }
    per_chiplet.print(std::cout);

    TablePrinter summary({"component", "kgCO2"});
    summary.addRow("manufacturing (Cmfg)", {report.mfgCo2Kg});
    summary.addRow("package (Cpackage)",
                   {report.hi.packageCo2Kg});
    summary.addRow("inter-die comm (Cmfg,comm)",
                   {report.hi.routingCo2Kg});
    summary.addRow("design, amortized (Cdes)",
                   {report.designCo2Kg});
    summary.addRow("embodied (Cemb)", {report.embodiedCo2Kg()});
    summary.addRow("operational (Cop x lifetime)",
                   {report.operation.co2Kg});
    summary.addRow("total (Ctot)", {report.totalCo2Kg()});
    std::cout << '\n';
    summary.print(std::cout);
}

void
printSweep(const AnalysisResult &sweep)
{
    std::cout << "\n" << sweep.detail << ":\n";
    TablePrinter table(
        {"nodes", "Cmfg_kg", "CHI_kg", "Cdes_kg", "Cemb_kg",
         "Cop_kg", "Ctot_kg"});
    for (const auto &p : sweep.points) {
        table.addRow(p.label(),
                     {p.report.mfgCo2Kg,
                      p.report.hi.totalCo2Kg(),
                      p.report.designCo2Kg,
                      p.report.embodiedCo2Kg(),
                      p.report.operation.co2Kg,
                      p.report.totalCo2Kg()});
    }
    table.print(std::cout);
    const auto &best =
        TechSpaceExplorer::bestByEmbodied(sweep.points);
    std::cout << "lowest embodied CFP: " << best.label() << " at "
              << best.report.embodiedCo2Kg() << " kg CO2\n";
}

void
printUncertainty(const AnalysisResult &mc)
{
    std::cout << "\nMonte-Carlo bands (" << mc.detail << "):\n";
    TablePrinter table(
        {"metric", "mean", "stddev", "p5", "p50", "p95"});
    auto row = [&](const char *name, const SampleStats &stats) {
        table.addRow(name, {stats.mean(), stats.stddev(),
                            stats.percentile(5.0),
                            stats.percentile(50.0),
                            stats.percentile(95.0)});
    };
    row("embodied", mc.uncertainty->embodied);
    row("operational", mc.uncertainty->operational);
    row("total", mc.uncertainty->total);
    table.print(std::cout);
}

void
printCost(const AnalysisResult &cost)
{
    std::cout << "\nDollar cost per part:\n";
    TablePrinter table({"component", "usd"});
    table.addRow("silicon dies", {cost.cost->dieUsd});
    table.addRow("package", {cost.cost->packageUsd});
    table.addRow("assembly+test", {cost.cost->assemblyUsd});
    table.addRow("NRE, amortized", {cost.cost->nreUsd});
    table.addRow("total", {cost.cost->totalUsd()});
    table.print(std::cout);
}

/**
 * Run a request batch on the engine. Default: one status line
 * per request (request order) plus a summary. With --stream:
 * stdout carries exactly one NDJSON line per request, in
 * completion order, and the human-readable summary moves to
 * stderr. Either way --json writes the BatchReport document.
 * Returns 1 when any request failed (the batch itself always
 * completes).
 */
int
runBatch(const CliOptions &opts, ScenarioRegistry registry)
{
    const BatchFile batch = loadBatchFile(opts.batchPath);
    if (batch.scenarioCatalog)
        registry.loadFile(*batch.scenarioCatalog);

    EngineOptions engine_options;
    engine_options.threads = opts.engineThreads.value_or(
        Parallelism::hardware().threads);
    engine_options.registry = std::move(registry);
    AnalysisEngine engine(std::move(engine_options));

    if (!opts.stream)
        std::cout << "batch: " << batch.requests.size()
                  << " requests on " << engine.threads()
                  << " engine thread(s)\n";

    BatchReport report;
    if (opts.stream) {
        // Completion-order NDJSON: the line is flushed as each
        // request finishes, so long batches report progress
        // incrementally; the report is assembled alongside for
        // --json and the exit code.
        report.outcomes.resize(batch.requests.size());
        engine.runStream(
            batch.requests,
            [&report](std::size_t index,
                      const RequestOutcome &outcome) {
                std::cout << streamEventLine(index, outcome)
                          << std::endl;
                report.outcomes[index] = outcome;
            });
    } else {
        report = engine.runBatch(batch.requests);
    }

    if (!opts.stream) {
        for (std::size_t i = 0; i < report.outcomes.size();
             ++i) {
            const RequestOutcome &outcome = report.outcomes[i];
            std::cout << "  ["
                      << (outcome.ok() ? "ok" : "FAILED")
                      << "] #" << i << " "
                      << toString(outcome.request.kind()) << " "
                      << outcome.request.scenario.label();
            if (outcome.ok())
                std::cout << " -- " << outcome.result->detail;
            else
                std::cout << " -- " << outcome.error;
            std::cout << "\n";
        }
    }
    (opts.stream ? std::cerr : std::cout)
        << report.succeeded() << "/" << report.outcomes.size()
        << " requests ok, " << engine.contextCount()
        << " distinct evaluation context(s)\n";

    if (opts.jsonPath) {
        writeBatchReportFile(report, *opts.jsonPath);
        (opts.stream ? std::cerr : std::cout)
            << "results written to " << *opts.jsonPath << "\n";
    }

    if (opts.markdownPath) {
        std::ofstream out(*opts.markdownPath);
        requireConfig(static_cast<bool>(out),
                      "cannot write markdown report: " +
                          *opts.markdownPath);
        for (const auto &outcome : report.outcomes) {
            if (outcome.ok())
                writeResultMarkdown(out, *outcome.result);
            else
                out << "# ECO-CHIP "
                    << toString(outcome.request.kind())
                    << ": FAILED\n\n- "
                    << outcome.request.scenario.label()
                    << ": " << outcome.error << "\n";
            out << "\n";
        }
        std::cout << "markdown report written to "
                  << *opts.markdownPath << "\n";
    }

    return report.allOk() ? 0 : 1;
}

/**
 * Run a design-space search spec: expand the generator lazily,
 * drive the strategy through the engine, and print the best
 * point and the Pareto frontier. --json writes the SearchResult
 * document, --report the underlying BatchReport (for exhaustive
 * search, byte-identical to --batch over the --expand file), and
 * --expand the hand-expanded request list as a --batch file.
 * Returns 1 when any evaluated request failed.
 */
int
runSearch(const CliOptions &opts, ScenarioRegistry registry)
{
    const SearchSpec spec =
        loadSearchSpecFile(opts.searchPath);

    if (!opts.searchExpandPath.empty()) {
        // The hand-expanded --batch file: a catalog reference
        // (absolute, so the file runs from any directory) plus
        // every point of the space in odometer order.
        ScenarioRegistry expanded = registry;
        if (spec.catalog)
            expanded.loadFile(*spec.catalog);
        const ScenarioSpace space(
            expanded.generator(spec.generator));
        json::Value doc = json::Value::makeObject();
        if (spec.catalog)
            doc.set("scenarios",
                    std::filesystem::absolute(*spec.catalog)
                        .string());
        doc.set("requests",
                requestsToJson(
                    SearchDriver::expand(spec, space)));
        json::writeFile(doc, opts.searchExpandPath);
        std::cout << "expanded request list written to "
                  << opts.searchExpandPath << "\n";
    }

    EngineOptions engine_options;
    engine_options.threads = opts.engineThreads.value_or(
        Parallelism::hardware().threads);
    engine_options.registry = std::move(registry);
    SearchDriver driver(std::move(engine_options));
    const SearchResult result = driver.run(spec);

    const auto tracked = trackedMetrics(result.spec);
    std::size_t feasible = 0;
    for (const auto &point : result.evaluated)
        if (point.feasible)
            ++feasible;

    std::cout << "search: generator \"" << spec.generator
              << "\" (" << result.spaceSize << " points), "
              << toString(spec.strategy.kind) << " strategy, "
              << "seed " << spec.strategy.seed << "\n"
              << "  evaluated " << result.evaluated.size()
              << " point(s) (" << result.requests.size()
              << " requests), " << feasible << " feasible\n";

    auto print_point = [&](const EvaluatedPoint &point) {
        std::cout << point.name << "\n      ";
        for (std::size_t i = 0; i < tracked.size(); ++i) {
            if (i)
                std::cout << "  ";
            std::cout << toString(tracked[i]) << "="
                      << point.metrics[i];
        }
        std::cout << "\n";
    };

    if (result.best) {
        std::cout << "  best (scalarized): ";
        print_point(result.evaluated[*result.best]);
    } else {
        std::cout << "  best (scalarized): none feasible\n";
    }

    std::cout << "  Pareto frontier: " << result.frontier.size()
              << " point(s)\n";
    for (const std::size_t slot : result.frontier) {
        std::cout << "    ";
        print_point(result.evaluated[slot]);
    }

    if (opts.jsonPath) {
        json::writeFile(searchResultToJson(result),
                        *opts.jsonPath);
        std::cout << "search result written to "
                  << *opts.jsonPath << "\n";
    }
    if (!opts.searchReportPath.empty()) {
        writeBatchReportFile(result.report,
                             opts.searchReportPath);
        std::cout << "batch report written to "
                  << opts.searchReportPath << "\n";
    }
    return result.report.allOk() ? 0 : 1;
}

/**
 * Run the analysis server until a signal or a `shutdown` verb
 * drains it. The server owns scenario resolution (builtin
 * registry + optional --scenarios catalog), the engine pool, and
 * the optional on-disk result cache.
 */
int
runServe(const CliOptions &opts)
{
    ServerOptions options;
    options.socketPath = opts.socketPath;
    options.engineThreads = opts.engineThreads.value_or(
        Parallelism::hardware().threads);
    options.scenariosPath = opts.scenariosPath;
    options.cacheDir = opts.cacheDir;
    if (opts.cacheEntries)
        options.cacheMaxEntries =
            static_cast<std::size_t>(*opts.cacheEntries);
    options.installSignalHandlers = true;
    return runAnalysisServer(std::move(options));
}

/**
 * Client mode: submit a batch file to a running server (NDJSON
 * events echo to stdout as they arrive, completion order), or
 * send the --stats / --shutdown control verb. With --json the
 * events are reassembled into the same BatchReport document
 * `--batch --json` writes -- byte-identical, so the two paths
 * can be compared with `cmp`. Returns 1 when any served request
 * failed.
 */
int
runConnect(const CliOptions &opts)
{
    // Absorb the startup race of `--serve ... &` followed
    // immediately by --connect: poll briefly until the daemon
    // answers.
    requireConfig(
        ServerClient::waitForServer(opts.connectPath, 10.0),
        "no analysis server answered on " + opts.connectPath);
    ServerClient client(opts.connectPath);

    if (opts.connectStats) {
        std::cout << client.roundTrip(
                         "{\"control\": \"stats\"}")
                  << "\n";
        return 0;
    }
    if (opts.connectShutdown) {
        std::cout << client.roundTrip(
                         "{\"control\": \"shutdown\"}")
                  << "\n";
        return 0;
    }

    const BatchFile batch = loadBatchFile(opts.batchPath);
    requireConfig(!batch.scenarioCatalog,
                  "this batch file names a scenario catalog, "
                  "but catalogs are server-side state; start "
                  "the server with --scenarios instead");

    for (const auto &request : batch.requests)
        client.sendLine(requestToJson(request).dump(false));

    // One event line per request, completion order; echo each as
    // it arrives and slot it by index for the report document.
    std::vector<json::Value> events(batch.requests.size());
    std::size_t succeeded = 0;
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
        const std::string line = client.readLine();
        std::cout << line << std::endl;
        json::Value event = json::parse(line);
        const auto index = static_cast<std::size_t>(
            event.at("index").asInteger());
        requireModel(index < events.size(),
                     "server answered an out-of-range request "
                     "index");
        if (event.booleanOr("ok", false))
            ++succeeded;
        events[index] = std::move(event);
    }

    std::cerr << succeeded << "/" << batch.requests.size()
              << " requests ok (served over "
              << opts.connectPath << ")\n";

    if (opts.jsonPath) {
        // The BatchReport document `--batch --json` writes:
        // strip the wire-only "index", order by request index.
        json::Value doc = json::Value::makeObject();
        doc.set("succeeded", static_cast<double>(succeeded));
        doc.set("failed",
                static_cast<double>(batch.requests.size() -
                                    succeeded));
        json::Value outcomes = json::Value::makeArray();
        for (const auto &event : events) {
            json::Value outcome = json::Value::makeObject();
            for (const auto &[key, value] : event.members())
                if (key != "index")
                    outcome.set(key, value);
            outcomes.append(std::move(outcome));
        }
        doc.set("outcomes", std::move(outcomes));
        json::writeFile(doc, *opts.jsonPath);
        std::cerr << "results written to " << *opts.jsonPath
                  << "\n";
    }
    return succeeded == batch.requests.size() ? 0 : 1;
}

/**
 * Path of this binary, for re-exec'ing it as shard workers.
 * Prefers /proc/self/exe (immune to PATH and cwd changes) and
 * falls back to argv[0].
 */
std::string
selfExecutable(const char *argv0)
{
    std::error_code ec;
    const auto self =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    return ec ? std::string(argv0) : self.string();
}

/**
 * Per-request status lines for a merged BatchReport document --
 * the same shape --batch prints, parsed back from the merged
 * JSON so shard and coordinate modes share one path.
 */
void
printMergedOutcomes(const std::vector<json::Value> &outcomes)
{
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const json::Value &outcome = outcomes[i];
        const bool ok = outcome.booleanOr("ok", false);
        // Parse the request back so kind/binding print through
        // the same typed path as the --batch status lines.
        const AnalysisRequest request =
            requestFromJson(outcome.at("request"));
        std::cout << "  [" << (ok ? "ok" : "FAILED") << "] #"
                  << i << " " << toString(request.kind()) << " "
                  << request.scenario.label();
        if (ok)
            std::cout << " -- "
                      << outcome.at("result").stringOr("detail",
                                                       "");
        else
            std::cout << " -- " << outcome.stringOr("error", "");
        std::cout << "\n";
    }
}

/**
 * Write the merged report pretty-printed to @p path -- the same
 * bytes `json::writeFile(mergedReport, path)` produces, but
 * transcoded straight from the compact merge text (one scan, no
 * DOM).
 */
void
writeMergedReportFile(const std::string &report_text,
                      const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    requireConfig(static_cast<bool>(out),
                  "cannot write JSON file: " + path);
    out << json::ondemand::reserialize(report_text, true)
        << '\n';
}

/**
 * Coordinate a sharded batch: fork/exec one `--shard_worker`
 * process per shard, merge the reports, and print the same
 * per-request status lines as --batch. Returns 1 when any
 * request failed.
 */
int
runShard(const CliOptions &opts, const char *argv0)
{
    ShardedRunOptions run;
    run.batchPath = opts.shardPath;
    run.shards = opts.shards.value_or(2);
    // Unset: automatic (the machine divided between the workers
    // actually planned).
    run.engineThreadsPerWorker = opts.engineThreads.value_or(0);
    run.shardDir = opts.shardDir;
    run.workerExe = selfExecutable(argv0);
    run.scenariosPath = opts.scenariosPath;

    const ShardedRunResult result = runShardedBatch(run);

    const auto &outcomes =
        result.mergedReport.at("outcomes").asArray();
    std::cout << "shard: " << outcomes.size()
              << " requests across " << result.shardsUsed
              << " worker process(es), "
              << result.threadsPerWorker
              << " engine thread(s) each\n";
    printMergedOutcomes(outcomes);
    std::cout << result.succeeded << "/" << outcomes.size()
              << " requests ok\n";
    if (!opts.shardDir.empty())
        std::cout << "shard scratch files kept in "
                  << opts.shardDir << "\n";

    if (opts.jsonPath) {
        writeMergedReportFile(result.mergedReportText,
                              *opts.jsonPath);
        std::cout << "merged report written to "
                  << *opts.jsonPath << "\n";
    }
    return result.allOk() ? 0 : 1;
}

/**
 * Coordinate a batch across the hosts of a manifest: hosts pull
 * binding-cohesive work chunks from the shared queue, stream
 * outcome events back, and the coordinator merges incrementally,
 * retrying failures and cancelled stragglers on other hosts.
 * Prints the same per-request status lines as --batch. Returns 1
 * when any request failed.
 */
int
runCoordinate(const CliOptions &opts, const char *argv0)
{
    CoordinatorOptions run;
    run.batchPath = opts.coordinatePath;
    run.hosts = loadHostManifest(opts.hostsPath);
    run.retries = opts.retries.value_or(2);
    run.shardTimeoutSeconds = opts.shardTimeout.value_or(0.0);
    // Unset: automatic (the machine divided between the shards
    // actually planned).
    run.engineThreadsPerWorker = opts.engineThreads.value_or(0);
    run.shardDir = opts.shardDir;
    run.workerExe = selfExecutable(argv0);
    run.scenariosPath = opts.scenariosPath;
    run.chunkTargetRequests = opts.chunkSize.value_or(0);
    run.resume = opts.resume;
    run.abortAfterFailedRequests =
        opts.abortAfterFailures
            ? static_cast<std::size_t>(*opts.abortAfterFailures)
            : 0;
    if (opts.progress)
        run.onProgress = [](const CoordinatorProgress &p) {
            std::cerr << "progress: " << p.requestsDone << "/"
                      << p.requestsTotal << " requests ("
                      << p.requestsFailed << " failed), "
                      << p.chunksDone << "/" << p.chunksTotal
                      << " chunks done, " << p.chunksInFlight
                      << " in flight";
            for (const auto &host : p.hosts)
                std::cerr << " | " << host.name << ": "
                          << host.inFlightChunks << " running, "
                          << host.doneChunks << " chunks / "
                          << host.doneRequests << " requests "
                          << "done";
            std::cerr << " | "
                      << static_cast<long>(
                             p.requestsPerSecond * 10.0) /
                             10.0
                      << " req/s\n";
        };

    const CoordinatedRunResult result =
        runDynamicCoordinatedBatch(run);

    const auto &outcomes =
        result.mergedReport.at("outcomes").asArray();
    std::cout << "coordinate: " << outcomes.size()
              << " requests across " << run.hosts.hosts.size()
              << " host(s) / " << run.hosts.totalSlots()
              << " slot(s), " << result.chunksPlanned
              << " chunk(s), " << result.threadsPerWorker
              << " engine thread(s) each\n";
    if (result.resumedOutcomes > 0)
        std::cout << "resumed " << result.resumedOutcomes
                  << " journaled outcome(s); they were not "
                  << "re-run\n";
    printMergedOutcomes(outcomes);
    std::cout << result.succeeded << "/" << outcomes.size()
              << " requests ok, " << result.redispatches
              << " re-dispatch(es)\n";
    if (result.aborted)
        std::cout << "aborted early after "
                  << *opts.abortAfterFailures
                  << " failed request(s); re-run with --resume "
                  << "to finish the remaining requests\n";
    if (!opts.shardDir.empty())
        std::cout << "shard scratch files kept in "
                  << opts.shardDir << " (outcome journal: "
                  << result.journalPath << ")\n";

    if (opts.jsonPath) {
        writeMergedReportFile(result.mergedReportText,
                              *opts.jsonPath);
        std::cout << "merged report written to "
                  << *opts.jsonPath << "\n";
    }
    return result.allOk() ? 0 : 1;
}

int
run(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);

    // Server modes manage their own registries, like the shard
    // modes below.
    if (opts.serve)
        return runServe(opts);

    if (!opts.connectPath.empty())
        return runConnect(opts);

    // Shard modes manage their own registries (the worker loads
    // builtin + catalogs itself, once per process).
    if (!opts.shardWorkerPath.empty())
        // Always stream: the event file beside the report is
        // what a dynamic coordinator tails, and harmless
        // otherwise.
        return runShardWorker(
            opts.shardWorkerPath, *opts.jsonPath,
            opts.engineThreads.value_or(
                Parallelism::hardware().threads),
            opts.scenariosPath, eventsPathFor(*opts.jsonPath));

    if (!opts.shardPath.empty())
        return runShard(opts, argv[0]);

    if (!opts.coordinatePath.empty())
        return runCoordinate(opts, argv[0]);

    ScenarioRegistry registry = ScenarioRegistry::builtin();
    if (!opts.scenariosPath.empty())
        registry.loadFile(opts.scenariosPath);

    if (opts.listScenarios) {
        printScenarios(std::cout, registry);
        return 0;
    }

    if (!opts.batchPath.empty())
        return runBatch(opts, std::move(registry));

    if (!opts.searchPath.empty())
        return runSearch(opts, std::move(registry));

    ScenarioBuilder builder;
    builder.registry(std::move(registry));
    if (!opts.designDir.empty())
        builder.designDirectory(opts.designDir);
    else
        builder.scenario(opts.scenario);
    const AnalysisSession session = builder.build();

    if (!opts.nodeList.empty()) {
        // Policy guard: a list longer than the chiplet count is
        // nearly always a per-chiplet assignment pasted from a
        // larger design, so fail fast instead of launching a
        // misdirected |list|^n sweep.
        requireConfig(
            opts.nodeList.size() <= session.system().chiplets.size(),
            "--node_list has " +
                std::to_string(opts.nodeList.size()) +
                " nodes but the design has only " +
                std::to_string(session.system().chiplets.size()) +
                " chiplets");
    }

    std::vector<AnalysisResult> results;

    results.push_back(session.estimate());
    printReport(session.system(), *results.back().report);

    if (!opts.nodeList.empty()) {
        results.push_back(session.sweep(opts.nodeList));
        printSweep(results.back());
    }

    if (opts.monteCarloTrials > 0) {
        results.push_back(
            session.monteCarlo(opts.monteCarloTrials, 42,
                               Parallelism{opts.threads}));
        printUncertainty(results.back());
    }

    if (opts.showCost) {
        results.push_back(session.cost());
        printCost(results.back());
    }

    if (opts.jsonPath) {
        json::Value doc = json::Value::makeArray();
        for (const auto &result : results)
            doc.append(resultToJson(result));
        json::writeFile(doc, *opts.jsonPath);
        std::cout << "\nresults written to " << *opts.jsonPath
                  << "\n";
    }

    if (opts.markdownPath) {
        std::ofstream out(*opts.markdownPath);
        requireConfig(static_cast<bool>(out),
                      "cannot write markdown report: " +
                          *opts.markdownPath);
        for (const auto &result : results) {
            writeResultMarkdown(out, result);
            out << "\n";
        }
        std::cout << "markdown report written to "
                  << *opts.markdownPath << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const ecochip::Error &e) {
        std::cerr << "eco_chip: " << e.what() << "\n";
        printUsage(std::cerr);
        return 1;
    }
}
