/**
 * @file
 * Batch engine walkthrough: declarative `AnalysisRequest`s
 * scheduled asynchronously across a thread pool, with scenario
 * deduplication, per-request failure isolation, and the JSON wire
 * format (`eco_chip --batch` uses exactly this path).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/batch_engine
 */

#include <iostream>

#include "engine/analysis_engine.h"
#include "io/request_io.h"

int
main()
{
    using namespace ecochip;

    // 1. Declare *what* to compute: one request per question.
    //    Requests are plain values -- the same ones eco_chip
    //    reads from requests.json.
    std::vector<AnalysisRequest> requests;
    for (const char *name : {"ga102", "ga102-mono", "emr",
                             "server-4die", "hbm-accel"})
        requests.push_back(
            {ScenarioRef::scenario(name), EstimateSpec{}});

    SweepSpec sweep;
    sweep.nodesNm = {7.0, 10.0, 14.0};
    requests.push_back({ScenarioRef::scenario("ga102"), sweep});

    MonteCarloSpec mc;
    mc.trials = 256;
    mc.seed = 42;
    requests.push_back({ScenarioRef::scenario("ga102"), mc});

    // A deliberately broken request: it fails alone, the batch
    // completes.
    requests.push_back({ScenarioRef::scenario("typo-scenario"),
                        EstimateSpec{}});

    std::cout << "wire format of request #5:\n"
              << requestToJson(requests[5]).dump(true) << "\n\n";

    // 2. Hand the batch to the engine, which owns *how* it runs:
    //    4 workers, one shared evaluation context per distinct
    //    scenario. Results are bit-identical at any thread count.
    AnalysisEngine engine(4);
    const BatchReport report = engine.runBatch(requests);

    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const RequestOutcome &outcome = report.outcomes[i];
        std::cout << "#" << i << " "
                  << toString(outcome.request.kind()) << " "
                  << outcome.request.scenario.label() << ": ";
        if (!outcome.ok()) {
            std::cout << "FAILED (" << outcome.error << ")\n";
            continue;
        }
        if (outcome.result->report)
            std::cout << outcome.result->report->totalCo2Kg()
                      << " kg CO2 total";
        else if (!outcome.result->points.empty())
            std::cout << outcome.result->points.size()
                      << " sweep points";
        else if (outcome.result->uncertainty)
            std::cout << "embodied p50 "
                      << outcome.result->uncertainty->embodied
                             .percentile(50.0)
                      << " kg CO2";
        std::cout << "\n";
    }

    std::cout << "\n" << report.succeeded() << "/"
              << report.outcomes.size() << " ok across "
              << engine.contextCount()
              << " deduplicated evaluation contexts\n";

    // 3. Futures, for streaming consumers: submit() returns
    //    immediately; .get() waits for that one request.
    auto future = engine.submit(
        {ScenarioRef::scenario("a15"), EstimateSpec{}});
    std::cout << "a15 total: "
              << future.get().report->totalCo2Kg()
              << " kg CO2\n";

    // The demo intentionally included one failing request; the
    // example itself succeeds when isolation held.
    return report.failed() == 1 ? 0 : 1;
}
