/**
 * @file
 * Carbon-aware SoC partitioning: the disaggregation optimizer
 * sweeps chiplet counts, node assignments, and packaging
 * architectures for a GA102-class GPU, with the mask-NRE carbon
 * extension enabled, and reports the carbon-optimal configuration
 * -- the paper's Sec. VI workflow, fully automated. The winner is
 * then re-examined through an `AnalysisSession` (Monte-Carlo
 * bands + dollar cost on one shared context).
 */

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "core/optimizer.h"
#include "core/testcases.h"
#include "session/analysis_session.h"

int
main()
{
    using namespace ecochip;

    EcoChipConfig config;
    config.operating = testcases::ga102Operating();
    config.includeMaskNre = true; // Sec. V-C NRE extension

    DisaggregationOptimizer optimizer(config);

    DisaggregationSpace space;
    space.digitalNodesNm = {7.0};
    space.memoryNodesNm = {7.0, 10.0, 14.0};
    space.analogNodesNm = {7.0, 10.0, 14.0};
    space.digitalSplits = {1, 2, 3, 4, 6};
    space.architectures = {PackagingArch::RdlFanout,
                           PackagingArch::SiliconBridge,
                           PackagingArch::PassiveInterposer};
    space.monolithNodeNm = 7.0;

    const auto points =
        optimizer.enumerate(testcases::ga102Blocks(), space);
    std::cout << "Evaluated " << points.size()
              << " disaggregation configurations\n\n";

    // Rank by embodied carbon and show the podium.
    std::vector<const DisaggregationPoint *> ranked;
    for (const auto &p : points)
        ranked.push_back(&p);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto *a, const auto *b) {
                  return a->report.embodiedCo2Kg() <
                         b->report.embodiedCo2Kg();
              });

    std::cout << std::fixed << std::setprecision(2);
    std::cout << "Top configurations by embodied carbon:\n";
    for (std::size_t i = 0; i < 8 && i < ranked.size(); ++i) {
        const auto &p = *ranked[i];
        std::cout << "  " << i + 1 << ". " << std::setw(32)
                  << std::left << p.label() << std::right
                  << "  Cemb " << std::setw(7)
                  << p.report.embodiedCo2Kg() << " kg, Ctot "
                  << std::setw(7) << p.report.totalCo2Kg()
                  << " kg\n";
    }

    const auto &mono = points.front();
    const auto &best =
        DisaggregationOptimizer::bestByEmbodied(points);
    const auto &best_total =
        DisaggregationOptimizer::bestByTotal(points);

    std::cout << "\nMonolithic baseline: "
              << mono.report.embodiedCo2Kg() << " kg embodied, "
              << mono.report.totalCo2Kg() << " kg total\n";
    std::cout << "Best embodied: " << best.label() << " saves "
              << 100.0 * (1.0 - best.report.embodiedCo2Kg() /
                                    mono.report.embodiedCo2Kg())
              << "% embodied carbon\n";
    std::cout << "Best total:    " << best_total.label()
              << " saves "
              << 100.0 * (1.0 - best_total.report.totalCo2Kg() /
                                    mono.report.totalCo2Kg())
              << "% total carbon\n";

    std::cout << "\nWinner breakdown (" << best.label() << "):\n"
              << "  Cmfg " << best.report.mfgCo2Kg << " kg, CHI "
              << best.report.hi.totalCo2Kg() << " kg, Cdes "
              << best.report.designCo2Kg << " kg, mask NRE "
              << best.report.nreCo2Kg << " kg, Cop "
              << best.report.operation.co2Kg << " kg\n";

    // How confident is the winner's number? Bind it into a
    // session and run uncertainty + cost on one shared context.
    EcoChipConfig winner_config = config;
    winner_config.package.arch = best.arch;
    const AnalysisSession session = ScenarioBuilder()
                                        .system(best.system)
                                        .config(winner_config)
                                        .build();
    const AnalysisResult bands =
        session.monteCarlo(500, 42, Parallelism{4});
    const SampleStats &emb = bands.uncertainty->embodied;
    std::cout << "\nMonte-Carlo (500 trials, 4 threads): Cemb "
              << emb.percentile(5.0) << " - "
              << emb.percentile(95.0) << " kg (p5-p95), mean "
              << emb.mean() << " kg\n";

    const CostBreakdown cost = *session.cost().cost;
    std::cout << "Unit cost of the winner: $" << cost.totalUsd()
              << " (die $" << cost.dieUsd << ", NRE $"
              << cost.nreUsd << ")\n";
    return 0;
}
