/**
 * @file
 * Mobile-SoC lifecycle study (A15-class): embodied-dominated
 * devices, the battery-rating operational path, chiplet reuse, and
 * the effect of cleaner energy sources -- the paper's Sec. V-A(4)
 * and V-C territory, driven through `AnalysisSession`.
 */

#include <iomanip>
#include <iostream>

#include "core/testcases.h"
#include "session/analysis_session.h"
#include "tech/carbon_intensity.h"

int
main()
{
    using namespace ecochip;

    std::cout << std::fixed << std::setprecision(2);

    // Baseline: monolithic A15 on coal-powered manufacturing.
    const AnalysisSession mono_session =
        ScenarioBuilder().scenario("a15-mono").build();
    const TechDb &tech = mono_session.context().tech();
    const EcoChipConfig &config = mono_session.context().config();

    const CarbonReport mono_r = *mono_session.estimate().report;
    std::cout << "A15 monolith (5 nm, coal-powered fab):\n"
              << "  embodied " << mono_r.embodiedCo2Kg()
              << " kg (" << std::setprecision(0)
              << 100.0 * mono_r.embodiedCo2Kg() /
                     mono_r.totalCo2Kg()
              << std::setprecision(2)
              << "% of total), operational "
              << mono_r.operation.co2Kg << " kg\n";

    // Disaggregate with the memory and IO as *reused* chiplets:
    // pre-designed IP shared across products amortizes its design
    // carbon elsewhere. Same context, different system -- the
    // session re-targets without rebuilding caches.
    SystemSpec reuse =
        testcases::a15ThreeChiplet(tech, 5.0, 7.0, 10.0);
    for (auto &chiplet : reuse.chiplets)
        if (chiplet.type != DesignType::Logic)
            chiplet.reused = true;
    reuse.name = "A15-3c-reuse";
    const AnalysisSession reuse_session =
        mono_session.withSystem(reuse);

    const CarbonReport reuse_r = *reuse_session.estimate().report;
    std::cout << "\nA15 3-chiplet (5,7,10) with reused "
                 "memory/IO chiplets:\n"
              << "  manufacturing " << reuse_r.mfgCo2Kg
              << " kg, HI " << reuse_r.hi.totalCo2Kg()
              << " kg, design " << reuse_r.designCo2Kg
              << " kg\n  embodied " << reuse_r.embodiedCo2Kg()
              << " kg vs. monolith " << mono_r.embodiedCo2Kg()
              << " kg\n";

    // What does switching the fab to renewables buy?
    std::cout << "\nEmbodied carbon vs. fab energy source "
                 "(3-chiplet with reuse):\n";
    for (EnergySource source :
         {EnergySource::Coal, EnergySource::Gas,
          EnergySource::Solar, EnergySource::Wind}) {
        EcoChipConfig clean = config;
        clean.fabIntensityGPerKwh =
            carbonIntensityGPerKwh(source);
        clean.package.intensityGPerKwh =
            clean.fabIntensityGPerKwh;
        clean.design.intensityGPerKwh =
            clean.fabIntensityGPerKwh;
        const AnalysisSession clean_session = ScenarioBuilder()
                                                  .system(reuse)
                                                  .config(clean)
                                                  .build();
        const CarbonReport r =
            *clean_session.estimate().report;
        std::cout << "  " << std::setw(6) << toString(source)
                  << " (" << std::setw(3)
                  << carbonIntensityGPerKwh(source)
                  << " g/kWh): " << r.embodiedCo2Kg()
                  << " kg CO2\n";
    }

    // Lifetime sensitivity: extending device life amortizes the
    // embodied carbon over more use.
    std::cout << "\nTotal carbon vs. lifetime (per year of "
                 "service):\n";
    for (double years : {2.0, 3.0, 4.0, 5.0}) {
        OperatingSpec longer = config.operating;
        longer.lifetimeYears = years;
        const AnalysisSession longer_session =
            ScenarioBuilder()
                .system(reuse)
                .config(config)
                .operating(longer)
                .build();
        const CarbonReport r =
            *longer_session.estimate().report;
        std::cout << "  " << years << " years: Ctot "
                  << r.totalCo2Kg() << " kg, per-year "
                  << r.totalCo2Kg() / years << " kg\n";
    }
    return 0;
}
