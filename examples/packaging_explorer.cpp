/**
 * @file
 * Packaging-architecture explorer: compare all five advanced
 * packaging families on one system and sweep their key knobs --
 * the early-architecture decision support of the paper's Sec. V-B,
 * with each architecture bound through `ScenarioBuilder`.
 */

#include <iomanip>
#include <iostream>

#include "core/disaggregate.h"
#include "floorplan/floorplan.h"
#include "session/analysis_session.h"

int
main()
{
    using namespace ecochip;

    std::cout << std::fixed << std::setprecision(3);

    // A 6-chiplet compute system: four 7 nm compute slices, a
    // 10 nm cache, a 14 nm IO chiplet.
    TechDb tech;
    SocBlocks blocks;
    blocks.logicAreaMm2 = 320.0;
    blocks.memoryAreaMm2 = 90.0;
    blocks.analogAreaMm2 = 40.0;
    blocks.refNodeNm = 7.0;
    const SystemSpec system = makeDigitalSplit(
        "hpc-6c", blocks, tech, 4, 7.0, 10.0, 14.0);

    // Show the floorplan driving the package-area estimates.
    const FloorplanResult fp = Floorplanner().plan(system, tech);
    std::cout << "Floorplan: " << fp.widthMm << " x "
              << fp.heightMm << " mm, whitespace "
              << 100.0 * fp.whitespaceFraction() << "%\n";
    for (const auto &p : fp.placements) {
        std::cout << "  " << std::setw(9) << p.name << " @ ("
                  << std::setw(7) << p.xMm << ", " << std::setw(7)
                  << p.yMm << ")  " << p.widthMm << " x "
                  << p.heightMm << " mm\n";
    }
    std::cout << "Adjacent pairs (bridge/router sites):\n";
    for (const auto &adj : fp.adjacencies) {
        std::cout << "  " << adj.first << " <-> " << adj.second
                  << " (" << adj.overlapMm << " mm shared edge)\n";
    }

    // Compare the five packaging architectures: one session per
    // architecture, all on the same system.
    std::cout << "\nPackaging architecture comparison:\n";
    std::cout << "  arch                 CHI_kg  pkg_kg  comm_kg"
                 "  noc_W   pkg_yield\n";
    for (PackagingArch arch :
         {PackagingArch::RdlFanout, PackagingArch::SiliconBridge,
          PackagingArch::PassiveInterposer,
          PackagingArch::ActiveInterposer,
          PackagingArch::Stack3d}) {
        const AnalysisSession session = ScenarioBuilder()
                                            .system(system)
                                            .tech(tech)
                                            .packaging(arch)
                                            .build();
        const CarbonReport r = *session.estimate().report;
        std::cout << "  " << std::setw(19) << std::left
                  << toString(arch) << std::right << "  "
                  << std::setw(6) << r.hi.totalCo2Kg() << "  "
                  << std::setw(6) << r.hi.packageCo2Kg << "  "
                  << std::setw(7) << r.hi.routingCo2Kg << "  "
                  << std::setw(5) << r.hi.nocPowerW << "  "
                  << std::setw(9) << r.hi.packageYield << "\n";
    }

    // Knob sweep: hybrid bonding pitch for a 3D flavor of the
    // same system (finer pitch = more bandwidth, more carbon).
    std::cout << "\n3D hybrid-bond pitch sweep:\n";
    for (double pitch : {1.0, 2.0, 5.0, 10.0}) {
        EcoChipConfig config;
        config.package.arch = PackagingArch::Stack3d;
        config.package.bondType = BondType::HybridBond;
        config.package.hybridBondPitchUm = pitch;
        const AnalysisSession session = ScenarioBuilder()
                                            .system(system)
                                            .tech(tech)
                                            .config(config)
                                            .build();
        const CarbonReport r = *session.estimate().report;
        std::cout << "  pitch " << std::setw(4) << pitch
                  << " um: " << std::setw(9) << std::setprecision(0)
                  << r.hi.bondCount << std::setprecision(3)
                  << " bonds, CHI " << r.hi.totalCo2Kg()
                  << " kg, yield " << r.hi.packageYield << "\n";
    }
    return 0;
}
