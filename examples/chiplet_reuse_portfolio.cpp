/**
 * @file
 * Chiplet-reuse portfolio study: a product family (flagship
 * phone SoC, mid-range SoC, tablet SoC, smartwatch SoC) sharing
 * IO and memory chiplet designs. Quantifies the fleet-level
 * design-carbon savings the paper's Sec. V-C "reuse across
 * several designs" argument promises, then puts uncertainty
 * bands on the flagship via the session API's batched
 * Monte Carlo.
 */

#include <iomanip>
#include <iostream>

#include "core/portfolio.h"
#include "session/analysis_session.h"

int
main()
{
    using namespace ecochip;

    TechDb tech;

    // Shared chiplet designs, used across the whole family.
    const Chiplet shared_io = Chiplet::fromArea(
        "family-io", DesignType::Analog, 14.0, 18.0, tech);
    const Chiplet shared_slc = Chiplet::fromArea(
        "family-slc", DesignType::Memory, 10.0, 30.0, tech);

    auto make_product = [&](const std::string &name,
                            double compute_area_mm2,
                            double compute_node_nm, double volume,
                            double annual_kwh) {
        Product product;
        product.system.name = name;
        product.system.chiplets.push_back(Chiplet::fromArea(
            name + "-compute", DesignType::Logic,
            compute_node_nm, compute_area_mm2, tech));
        product.system.chiplets.push_back(shared_slc);
        product.system.chiplets.push_back(shared_io);
        product.volume = volume;
        product.operating.lifetimeYears = 3.0;
        product.operating.dutyCycle = 0.15;
        product.operating.annualEnergyKwh = annual_kwh;
        return product;
    };

    const std::vector<Product> family = {
        make_product("flagship", 70.0, 5.0, 3.0e6, 1.0),
        make_product("midrange", 45.0, 7.0, 8.0e6, 0.8),
        make_product("tablet", 85.0, 5.0, 1.5e6, 1.4),
        make_product("watch", 20.0, 7.0, 2.0e6, 0.15),
    };

    EcoChipConfig config;
    config.includeMaskNre = true;
    PortfolioAnalyzer analyzer(config, tech);
    const PortfolioResult result = analyzer.analyze(family);

    std::cout << std::fixed << std::setprecision(3);
    std::cout << "Portfolio: " << family.size() << " products, "
              << result.distinctDesigns
              << " distinct chiplet designs across "
              << result.totalInstances << " instances\n\n";

    std::cout << "Per-product design carbon (kg CO2/part):\n";
    std::cout << "  product    isolated   shared    Cemb     "
                 "Ctot\n";
    for (const auto &p : result.products) {
        std::cout << "  " << std::setw(9) << std::left << p.name
                  << std::right << "  " << std::setw(8)
                  << p.isolatedDesignCo2Kg << "  " << std::setw(7)
                  << p.sharedDesignCo2Kg << "  " << std::setw(7)
                  << p.report.embodiedCo2Kg() << "  "
                  << std::setw(7) << p.report.totalCo2Kg()
                  << "\n";
    }

    std::cout << "\nFleet carbon (all parts, all products): "
              << result.fleetCo2Kg / 1e6 << " kt CO2\n";
    std::cout << "Design carbon saved by sharing chiplet "
                 "designs: "
              << result.designSharingSavingsCo2Kg / 1e3
              << " t CO2\n";
    std::cout << "(= the EDA compute and mask sets of "
              << "the duplicated designs that were never built)\n";

    // Uncertainty bands on the flagship part: Table I publishes
    // ranges, not point values, so state the headline with
    // confidence bounds (batched across 4 worker threads).
    EcoChipConfig flagship_config = config;
    flagship_config.operating = family.front().operating;
    const AnalysisSession session =
        ScenarioBuilder()
            .system(family.front().system)
            .tech(tech)
            .config(flagship_config)
            .build();
    const AnalysisResult bands =
        session.monteCarlo(500, 42, Parallelism{4});
    const SampleStats &emb = bands.uncertainty->embodied;
    std::cout << "\nFlagship embodied carbon (500 MC trials): "
              << emb.percentile(5.0) << " - "
              << emb.percentile(95.0) << " kg CO2 (p5-p95)\n";
    return 0;
}
