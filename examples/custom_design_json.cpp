/**
 * @file
 * Config-file workflow: load a design directory (the reference
 * tool's `--design_dir` flow) with `architecture.json` +
 * `packageC.json` + `designC.json` + `operationalC.json`, estimate
 * it, and emit a JSON report.
 *
 * Usage:
 *   ./custom_design_json [design_dir]
 * Default design_dir: data/testcases/GA102 relative to the repo
 * root (falls back to an embedded config when missing).
 */

#include <iostream>

#include "core/ecochip.h"
#include "io/config_loader.h"
#include "support/error.h"

int
main(int argc, char **argv)
{
    using namespace ecochip;

    TechDb tech;
    DesignBundle bundle;

    const std::string dir =
        argc > 1 ? argv[1] : "data/testcases/GA102";
    try {
        bundle = loadDesignDirectory(dir, tech);
        std::cout << "Loaded design directory: " << dir << "\n";
    } catch (const ConfigError &e) {
        std::cout << "(" << e.what()
                  << "; using embedded config)\n";
        const json::Value arch = json::parse(R"({
            "name": "embedded-soc",
            "monolithic": false,
            "packaging": "rdl_fanout",
            "chiplets": [
                {"name": "digital", "type": "logic",
                 "node_nm": 7, "area_mm2": 150.0},
                {"name": "memory", "type": "memory",
                 "node_nm": 10, "area_mm2": 40.0},
                {"name": "io", "type": "analog",
                 "node_nm": 14, "area_mm2": 20.0, "reused": true}
            ]
        })");
        bundle.system = systemFromJson(arch, tech);
    }

    EcoChip estimator(bundle.config, tech);
    const CarbonReport report = estimator.estimate(bundle.system);

    std::cout << "System \"" << bundle.system.name << "\" ("
              << bundle.system.chiplets.size() << " chiplets, "
              << toString(estimator.config().package.arch)
              << " packaging)\n\n";
    std::cout << reportToJson(report).dump(true) << "\n";
    return 0;
}
