/**
 * @file
 * Config-file workflow: load a design directory (the reference
 * tool's `--design_dir` flow) into an `AnalysisSession`, estimate
 * it, and emit the result through the unified JSON path.
 *
 * Usage:
 *   ./custom_design_json [design_dir]
 * Default design_dir: data/testcases/GA102 relative to the repo
 * root (falls back to an embedded config when missing).
 */

#include <iostream>
#include <optional>

#include "io/config_loader.h"
#include "io/result_writer.h"
#include "session/analysis_session.h"
#include "support/error.h"

int
main(int argc, char **argv)
{
    using namespace ecochip;

    const std::string dir =
        argc > 1 ? argv[1] : "data/testcases/GA102";

    std::optional<AnalysisSession> session;
    try {
        session =
            ScenarioBuilder().designDirectory(dir).build();
        std::cout << "Loaded design directory: " << dir << "\n";
    } catch (const ConfigError &e) {
        std::cout << "(" << e.what()
                  << "; using embedded config)\n";
        const json::Value arch = json::parse(R"({
            "name": "embedded-soc",
            "monolithic": false,
            "packaging": "rdl_fanout",
            "chiplets": [
                {"name": "digital", "type": "logic",
                 "node_nm": 7, "area_mm2": 150.0},
                {"name": "memory", "type": "memory",
                 "node_nm": 10, "area_mm2": 40.0},
                {"name": "io", "type": "analog",
                 "node_nm": 14, "area_mm2": 20.0, "reused": true}
            ]
        })");
        TechDb tech;
        session = ScenarioBuilder()
                      .system(systemFromJson(arch, tech))
                      .tech(tech)
                      .build();
    }

    const AnalysisResult result = session->estimate();

    std::cout << "System \"" << session->system().name << "\" ("
              << session->system().chiplets.size() << " chiplets, "
              << toString(session->context().config().package.arch)
              << " packaging)\n\n";
    std::cout << resultToJson(result).dump(true) << "\n";
    return 0;
}
