/**
 * @file
 * Quickstart: estimate the carbon footprint of a small custom
 * chiplet system with ECO-CHIP's default calibration.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/ecochip.h"

int
main()
{
    using namespace ecochip;

    // 1. An estimator with the paper's defaults: 450 mm wafers,
    //    coal-powered fab (700 g CO2/kWh), RDL-fanout packaging.
    EcoChip estimator;
    const TechDb &tech = estimator.tech();

    // 2. Describe a heterogeneous system: a 7 nm compute chiplet,
    //    a 10 nm SRAM cache chiplet, and a reused 14 nm IO chiplet.
    SystemSpec system;
    system.name = "quickstart-soc";
    system.chiplets.push_back(Chiplet::fromArea(
        "compute", DesignType::Logic, 7.0, 120.0, tech));
    system.chiplets.push_back(Chiplet::fromArea(
        "cache", DesignType::Memory, 10.0, 60.0, tech));
    Chiplet io = Chiplet::fromArea("io", DesignType::Analog, 14.0,
                                   25.0, tech);
    io.reused = true; // pre-designed IP: no new design carbon
    system.chiplets.push_back(io);

    // 3. Estimate.
    const CarbonReport report = estimator.estimate(system);

    std::cout << "System: " << system.name << "\n\n";
    std::cout << "Per-chiplet manufacturing:\n";
    for (const auto &c : report.chiplets) {
        std::cout << "  " << c.name << ": " << c.areaMm2
                  << " mm^2 @ " << c.nodeNm << " nm, yield "
                  << c.yield << ", " << c.mfgCo2Kg << " kg CO2\n";
    }
    std::cout << "\nManufacturing (Cmfg):   " << report.mfgCo2Kg
              << " kg CO2\n";
    std::cout << "Packaging+comm (CHI):   "
              << report.hi.totalCo2Kg() << " kg CO2\n";
    std::cout << "Design, amortized:      " << report.designCo2Kg
              << " kg CO2\n";
    std::cout << "Embodied (Cemb):        "
              << report.embodiedCo2Kg() << " kg CO2\n";
    std::cout << "Operational (lifetime): "
              << report.operation.co2Kg << " kg CO2\n";
    std::cout << "Total (Ctot):           " << report.totalCo2Kg()
              << " kg CO2\n";

    // 4. Compare against the ACT baseline model.
    std::cout << "\nACT baseline embodied:  "
              << estimator.actEmbodiedCo2Kg(system)
              << " kg CO2 (no design CFP, fixed 150 g package)\n";

    // 5. Dollar cost under the same yields.
    const CostBreakdown cost = estimator.cost(system);
    std::cout << "Unit cost:              $" << cost.totalUsd()
              << " (die $" << cost.dieUsd << ", package $"
              << cost.packageUsd << ", assembly $"
              << cost.assemblyUsd << ", NRE $" << cost.nreUsd
              << ")\n";
    return 0;
}
