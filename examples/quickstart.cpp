/**
 * @file
 * Quickstart: estimate the carbon footprint of a small custom
 * chiplet system through the `AnalysisSession` API.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/quickstart
 */

#include <iostream>

#include "session/analysis_session.h"

int
main()
{
    using namespace ecochip;

    // 1. Describe a heterogeneous system: a 7 nm compute chiplet,
    //    a 10 nm SRAM cache chiplet, and a reused 14 nm IO chiplet.
    TechDb tech;
    SystemSpec system;
    system.name = "quickstart-soc";
    system.chiplets.push_back(Chiplet::fromArea(
        "compute", DesignType::Logic, 7.0, 120.0, tech));
    system.chiplets.push_back(Chiplet::fromArea(
        "cache", DesignType::Memory, 10.0, 60.0, tech));
    Chiplet io = Chiplet::fromArea("io", DesignType::Analog, 14.0,
                                   25.0, tech);
    io.reused = true; // pre-designed IP: no new design carbon
    system.chiplets.push_back(io);

    // 2. Bind it to the paper's default calibration: 450 mm
    //    wafers, coal-powered fab (700 g CO2/kWh), RDL fanout.
    //    Every analysis below shares one cached context.
    const AnalysisSession session =
        ScenarioBuilder().system(system).tech(tech).build();

    // 3. Estimate.
    const AnalysisResult estimate = session.estimate();
    const CarbonReport &report = *estimate.report;

    std::cout << "System: " << session.system().name << "\n\n";
    std::cout << "Per-chiplet manufacturing:\n";
    for (const auto &c : report.chiplets) {
        std::cout << "  " << c.name << ": " << c.areaMm2
                  << " mm^2 @ " << c.nodeNm << " nm, yield "
                  << c.yield << ", " << c.mfgCo2Kg << " kg CO2\n";
    }
    std::cout << "\nManufacturing (Cmfg):   " << report.mfgCo2Kg
              << " kg CO2\n";
    std::cout << "Packaging+comm (CHI):   "
              << report.hi.totalCo2Kg() << " kg CO2\n";
    std::cout << "Design, amortized:      " << report.designCo2Kg
              << " kg CO2\n";
    std::cout << "Embodied (Cemb):        "
              << report.embodiedCo2Kg() << " kg CO2\n";
    std::cout << "Operational (lifetime): "
              << report.operation.co2Kg << " kg CO2\n";
    std::cout << "Total (Ctot):           " << report.totalCo2Kg()
              << " kg CO2\n";

    // 4. Compare against the ACT baseline model.
    std::cout << "\nACT baseline embodied:  "
              << session.context().estimator().actEmbodiedCo2Kg(
                     session.system())
              << " kg CO2 (no design CFP, fixed 150 g package)\n";

    // 5. Dollar cost under the same yields, as another verb on
    //    the same session.
    const CostBreakdown cost = *session.cost().cost;
    std::cout << "Unit cost:              $" << cost.totalUsd()
              << " (die $" << cost.dieUsd << ", package $"
              << cost.packageUsd << ", assembly $"
              << cost.assemblyUsd << ", NRE $" << cost.nreUsd
              << ")\n";
    return 0;
}
