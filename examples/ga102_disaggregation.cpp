/**
 * @file
 * GPU disaggregation study: take the monolithic GA102-class GPU,
 * explore (digital, memory, analog) technology-node tuples with
 * the session's `sweep()` verb, and report the carbon-optimal
 * configuration against the monolith and the ACT baseline --
 * the workflow behind the paper's Sec. V-A.
 */

#include <iomanip>
#include <iostream>

#include "core/testcases.h"
#include "session/analysis_session.h"

int
main()
{
    using namespace ecochip;

    // One cached evaluation context; the monolith and every sweep
    // point share its memoized tech-db interpolations.
    const AnalysisSession session =
        ScenarioBuilder().scenario("ga102").build();
    const TechDb &tech = session.context().tech();

    std::cout << std::fixed << std::setprecision(2);

    // Monolithic baseline at the native 7 nm node.
    const AnalysisSession mono_session =
        session.withSystem(testcases::ga102Monolithic(tech));
    const CarbonReport mono_r = *mono_session.estimate().report;
    std::cout << "Monolithic GA102 (7 nm): Cemb = "
              << mono_r.embodiedCo2Kg() << " kg, Ctot = "
              << mono_r.totalCo2Kg() << " kg CO2\n";

    // Explore every (digital, memory, analog) node tuple.
    const AnalysisResult space =
        session.sweep({7.0, 10.0, 14.0});

    std::cout << "\nExplored " << space.points.size()
              << " node assignments:\n";
    for (const auto &point : space.points) {
        std::cout << "  " << std::setw(10) << point.label()
                  << "  Cemb " << std::setw(7)
                  << point.report.embodiedCo2Kg() << " kg, Ctot "
                  << std::setw(7) << point.report.totalCo2Kg()
                  << " kg\n";
    }

    const auto &best =
        TechSpaceExplorer::bestByEmbodied(space.points);
    const double saving = 1.0 - best.report.embodiedCo2Kg() /
                                    mono_r.embodiedCo2Kg();
    std::cout << "\nCarbon-optimal tuple: " << best.label()
              << "  (embodied saving vs. monolith: "
              << 100.0 * saving << "%)\n";

    // The per-chiplet view of the winner.
    std::cout << "\nWinning configuration breakdown:\n";
    for (const auto &c : best.report.chiplets) {
        std::cout << "  " << std::setw(8) << c.name << " @ "
                  << std::setw(2) << c.nodeNm << " nm: "
                  << std::setw(7) << c.areaMm2 << " mm^2, yield "
                  << std::setprecision(3) << c.yield
                  << std::setprecision(2) << ", mfg "
                  << c.mfgCo2Kg << " kg CO2\n";
    }
    std::cout << "  package: "
              << best.report.hi.packageAreaMm2 << " mm^2 ("
              << best.report.hi.whitespaceAreaMm2
              << " mm^2 whitespace), CHI "
              << best.report.hi.totalCo2Kg() << " kg CO2\n";

    // ACT would miss the design and packaging carbon entirely.
    std::cout << "\nACT baseline for the winner: "
              << session.context().estimator().actEmbodiedCo2Kg(
                     best.system)
              << " kg CO2 vs. ECO-CHIP "
              << best.report.embodiedCo2Kg() << " kg CO2\n";
    return 0;
}
